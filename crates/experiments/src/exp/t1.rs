//! T1 — Theorem 3.1: feasibility characterization.
//!
//! For every family of the taxonomy we run the *dedicated* algorithm from
//! the constructive side of the theorem and check: feasible families meet,
//! infeasible families never even get strictly inside the radius (their
//! minimum distance over the whole run stays ≥ r, matching the
//! impossibility arguments of Lemmas 3.8/3.9).

use crate::report::{Ctx, ExperimentOutput};
use crate::runner::{Campaign, SummaryExt};
use crate::table::Table;
use crate::util::fnum;
use crate::workloads::sample;
use rv_core::{recommend, Budget};
use rv_model::TargetClass;

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> ExperimentOutput {
    let mut table = Table::new([
        "family",
        "classification",
        "feasible (Thm 3.1)",
        "dedicated algorithm",
        "met",
        "median time",
        "min dist / r",
    ]);
    let mut stats = Vec::new();

    for class in TargetClass::all() {
        let instances = sample(
            class,
            ctx.scale.per_family,
            0x71_0000 + class.expected() as u64,
        );
        let expected = class.expected();
        // The explicit Recommendation makes infeasibility visible instead
        // of silently running AUR: the table shows the verdict and the
        // schema-2 stats carry the per-campaign `infeasible` count.
        let rec = recommend(&instances[0]);
        let feasible = rec.feasible;
        debug_assert_eq!(feasible, expected.feasible());
        let budget = if feasible {
            Budget::default().segments(ctx.scale.success_segments)
        } else {
            Budget::default().segments(ctx.scale.failure_segments)
        };
        let report = Campaign::dedicated(budget).run(&instances);
        let s = &report.stats;
        let alg = format!("{:?}", rec.solver);
        table.row([
            format!("{class:?}"),
            expected.to_string(),
            if feasible { "yes".into() } else { "no".into() },
            alg,
            s.rate(),
            s.median_time_str(),
            fnum(s.min_dist_over_r),
        ]);
        stats.push((format!("{class:?}"), report.stats));
    }

    ctx.write("t1_feasibility.md", &table.to_markdown());
    ctx.write("t1_feasibility.csv", &table.to_csv());
    ctx.write_stats_json("t1_stats.json", "t1", &stats);

    let markdown = format!(
        "Validates the feasibility characterization constructively: every \
         feasible family is solved by its dedicated algorithm; the \
         infeasible families never get strictly inside the visibility \
         radius (min dist / r ≥ 1).\n\n{}",
        table.to_markdown()
    );
    ExperimentOutput {
        id: "t1",
        title: "Theorem 3.1 — feasibility characterization",
        markdown,
        artifacts: vec![
            "t1_feasibility.md".into(),
            "t1_feasibility.csv".into(),
            "t1_stats.json".into(),
        ],
    }
}
