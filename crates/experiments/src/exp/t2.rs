//! T2 — Theorem 3.2: `AlmostUniversalRV` coverage per type.
//!
//! The single anonymous algorithm must meet on every instance of types
//! 1–4. We also report how deep into the phase schedule the meetings
//! happen (via processed segments) — the practical cost profile of the
//! four per-type mechanisms.

use crate::report::{Ctx, ExperimentOutput};
use crate::runner::{Campaign, SummaryExt};
use crate::table::Table;
use crate::util::fnum;
use crate::workloads::generator;
use rv_core::Budget;
use rv_model::TargetClass;

const FAMILIES: [TargetClass; 5] = [
    TargetClass::Type1,
    TargetClass::Type2,
    TargetClass::Type3,
    TargetClass::Type4Speed,
    TargetClass::Type4Rotation,
];

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> ExperimentOutput {
    let mut table = Table::new([
        "family",
        "met",
        "median time",
        "max time",
        "median segments",
        "min dist / r",
    ]);
    let mut stats = Vec::new();

    for class in FAMILIES {
        // Seed-indexed stream: instances are generated inside the
        // workers (same per-index seeds as the materialised `sample`),
        // so only the distilled records are ever held.
        let budget = Budget::default().segments(ctx.scale.success_segments);
        let report = Campaign::aur(budget).run_seeded(
            ctx.scale.per_family,
            generator(class, 0x72_0000 + class.expected() as u64),
        );
        let s = &report.stats;
        table.row([
            format!("{class:?}"),
            s.rate(),
            s.median_time_str(),
            s.max_time_str(),
            s.median_segments.to_string(),
            fnum(s.min_dist_over_r),
        ]);
        stats.push((format!("{class:?}"), report.stats));
    }

    ctx.write("t2_aur_coverage.md", &table.to_markdown());
    ctx.write("t2_aur_coverage.csv", &table.to_csv());
    ctx.write_stats_json("t2_stats.json", "t2", &stats);

    let markdown = format!(
        "The single algorithm `AlmostUniversalRV` run on both (anonymous) \
         agents; Theorem 3.2 predicts rendezvous on all four types.\n\n{}",
        table.to_markdown()
    );
    ExperimentOutput {
        id: "t2",
        title: "Theorem 3.2 — AlmostUniversalRV coverage",
        markdown,
        artifacts: vec![
            "t2_aur_coverage.md".into(),
            "t2_aur_coverage.csv".into(),
            "t2_stats.json".into(),
        ],
    }
}
