//! F1–F3 — the paper's geometric illustrations, regenerated from the
//! implementation (not hand-drawn): Figure 1 (instance with canonical
//! line and bisectrix), Figure 2 (the three coordinate systems Γ, Σ,
//! Rot(jπ/2^i) of Lemma 3.2), Figure 3 (the Claim 3.1 construction).

use crate::report::{Ctx, ExperimentOutput};
use crate::svg::{Canvas, Series};
use rv_geometry::{Chirality, Vec2};
use rv_model::{Angle, Instance};
use rv_numeric::ratio;

/// The paper's running example: mirrored chirality, rotated frames.
fn example_instance() -> Instance {
    Instance::builder()
        .position(ratio(4, 1), ratio(3, 1))
        .phi(Angle::pi_frac(1, 2))
        .chirality(Chirality::Minus)
        .delay(ratio(2, 1))
        .r(ratio(1, 1))
        .build()
        .unwrap()
}

/// Axis pair (x then y) of a frame at `origin` rotated by `phi` with the
/// given chirality, drawn as two unit segments.
fn frame_axes(origin: Vec2, phi: &Angle, chi: Chirality, len: f64) -> (Series, Series) {
    let x_dir = phi.unit();
    let y_local = Angle::quarter();
    let y_abs = phi.compose_local(&y_local, chi.is_plus());
    let y_dir = y_abs.unit();
    let xs = Series::line(
        "x-axis",
        vec![
            (origin.x, origin.y),
            (origin.x + x_dir.x * len, origin.y + x_dir.y * len),
        ],
    );
    let ys = Series::line(
        "y-axis",
        vec![
            (origin.x, origin.y),
            (origin.x + y_dir.x * len, origin.y + y_dir.y * len),
        ],
    );
    (xs, ys)
}

/// Figure 1: instance geometry with canonical line `L` and bisectrix `D`.
pub fn f1(ctx: &Ctx) -> ExperimentOutput {
    let inst = example_instance();
    let a = Vec2::ZERO;
    let b = inst.displacement();
    let line = inst.canonical_line();
    let bisectrix_angle = inst.phi.half_angle();

    let mut canvas = Canvas::new("Figure 1 — instance geometry, canonical line L, bisectrix D");
    let (ax, ay) = frame_axes(a, &Angle::zero(), Chirality::Plus, 1.4);
    let (bx, by) = frame_axes(b, &inst.phi, inst.chi, 1.4);
    canvas.push(Series {
        label: "A axes".into(),
        ..ax
    });
    canvas.push(Series {
        label: "A y".into(),
        ..ay.dashed()
    });
    canvas.push(Series {
        label: "B axes".into(),
        ..bx
    });
    canvas.push(Series {
        label: "B y".into(),
        ..by.dashed()
    });
    canvas.point(a, "A");
    canvas.point(b, "B");
    canvas.point(line.project(a), "proj_A");
    canvas.point(line.project(b), "proj_B");
    canvas.line(a, bisectrix_angle.radians(), "D (bisectrix)");
    canvas.line(line.point, line.dir.radians(), "L (canonical)");

    ctx.write("f1_canonical_line.svg", &canvas.render());
    ExperimentOutput {
        id: "f1",
        title: "Figure 1 — canonical line of an instance",
        markdown: format!(
            "Regenerated from `Instance::canonical_line` for the χ = −1 \
             example {inst}. The canonical line is parallel to the \
             bisectrix of the x-axes and equidistant from both origins \
             (Definition 2.1); the projections proj_A/proj_B drive the \
             type-1 feasibility bound."
        ),
        artifacts: vec!["f1_canonical_line.svg".into()],
    }
}

/// Figure 2: the systems Γ, Σ and Rot_A(jπ/2^i) for a type-1 epoch.
pub fn f2(ctx: &Ctx) -> ExperimentOutput {
    // φ = π/3: the bisectrix π/6 is NOT on the dyadic grid, so the chosen
    // epoch frame forms a strictly positive angle α with L.
    let inst = Instance::builder()
        .position(ratio(4, 1), ratio(3, 1))
        .phi(Angle::pi_frac(1, 3))
        .chirality(Chirality::Minus)
        .delay(ratio(2, 1))
        .r(ratio(1, 1))
        .build()
        .unwrap();
    let line = inst.canonical_line();
    let a = Vec2::ZERO;

    // Σ: rotation of Γ whose x-axis is parallel to L.
    let sigma = line.dir.clone();
    // Rot_A(jπ/2^i): pick i = 3, and the j whose angle is closest above Σ.
    let i = 3u32;
    let step = Angle::pi_frac(1, 1 << i);
    let mut rot = Angle::zero();
    let mut j_star = 0u64;
    for j in 1..=(1u64 << (i + 1)) {
        rot = rot.clone() + step.clone();
        j_star = j;
        // First frame at or above the Σ inclination.
        if rot.ratio_pi() >= sigma.ratio_pi() {
            break;
        }
    }

    let mut canvas = Canvas::new("Figure 2 — coordinate systems Γ, Σ and Rot(jπ/2^i)");
    let (gx, gy) = frame_axes(a, &Angle::zero(), Chirality::Plus, 2.0);
    canvas.push(Series {
        label: "Γ (agent A)".into(),
        ..gx
    });
    canvas.push(Series {
        label: "Γ y".into(),
        ..gy.dashed()
    });
    let (sx, sy) = frame_axes(a, &sigma, Chirality::Plus, 2.0);
    canvas.push(Series {
        label: "Σ (aligned with L)".into(),
        ..sx
    });
    canvas.push(Series {
        label: "Σ y".into(),
        ..sy.dashed()
    });
    let (rx, ry) = frame_axes(a, &rot, Chirality::Plus, 2.0);
    canvas.push(Series {
        label: format!("Rot({j_star}π/2^{i})"),
        ..rx
    });
    canvas.push(Series {
        label: "Rot y".into(),
        ..ry.dashed()
    });
    canvas.point(a, "A");
    canvas.point(inst.displacement(), "B");
    canvas.line(line.point, line.dir.radians(), "L");

    ctx.write("f2_rot_systems.svg", &canvas.render());
    let alpha = rot.clone() - sigma.clone();
    ExperimentOutput {
        id: "f2",
        title: "Figure 2 — the three coordinate systems of Lemma 3.2",
        markdown: format!(
            "At phase i = {i}, epoch j = {j_star} gives the frame \
             Rot({j_star}π/2^{i}) whose x-axis forms the angle α = {alpha} \
             with the canonical line — the α < π/2^i bound that the \
             deviation analysis of Lemma 3.2 consumes."
        ),
        artifacts: vec!["f2_rot_systems.svg".into()],
    }
}

/// Figure 3: the Claim 3.1 construction — the y-axis of the rotated frame
/// meets L at `o`, and some sweep line of `PlanarCowWalk` starts within
/// `min(r,e)/8` of it.
pub fn f3(ctx: &Ctx) -> ExperimentOutput {
    let inst = example_instance();
    let line = inst.canonical_line();
    let a = Vec2::ZERO;
    let b = inst.displacement();

    let mut canvas = Canvas::new("Figure 3 — Claim 3.1: sweep lines straddle the canonical line");
    canvas.point(a, "A");
    canvas.point(b, "B");
    canvas.point(line.project(a), "proj_A");
    canvas.point(line.project(b), "proj_B");
    canvas.line(line.point, line.dir.radians(), "L");

    // Sweep lines of PlanarCowWalk(i) in the aligned frame: offsets k/2^i
    // along the frame's y-axis.
    let i = 3;
    let step = 2f64.powi(-i);
    let dir = line.dir.radians();
    let normal = Vec2::new(-dir.sin(), dir.cos());
    let mut sweep_points = Vec::new();
    for k in -6i32..=6 {
        let p = a + normal * (k as f64 * step);
        sweep_points.push(Series::line(
            if k == -6 {
                "sweep lines (k/2^i)".to_string()
            } else {
                String::new()
            },
            vec![
                (p.x - 3.0 * dir.cos(), p.y - 3.0 * dir.sin()),
                (p.x + 5.0 * dir.cos(), p.y + 5.0 * dir.sin()),
            ],
        ));
    }
    for s in sweep_points {
        canvas.push(s.dashed());
    }

    ctx.write("f3_claim_3_1.svg", &canvas.render());
    ExperimentOutput {
        id: "f3",
        title: "Figure 3 — Claim 3.1 geometry",
        markdown: "The PlanarCowWalk sweep lines (spacing 2^{-i}) in the \
                   epoch frame straddle the canonical line: one of them \
                   starts within min(r,e)/8 of it, which is where the \
                   linear search of Lemma 3.2 happens."
            .to_string(),
        artifacts: vec!["f3_claim_3_1.svg".into()],
    }
}

/// Runs F1–F3 and merges their outputs.
pub fn run(ctx: &Ctx) -> Vec<ExperimentOutput> {
    vec![f1(ctx), f2(ctx), f3(ctx)]
}
