//! T4 — Section 5: different visibility radii.
//!
//! Agent A keeps the instance radius `r1 = r`, agent B sees only
//! `r2 = r/4`; rendezvous now means reaching distance `r2`. Per Section 5
//! the far-sighted agent stops on first sight and AUR's per-phase search
//! procedures bring the other agent the rest of the way. Instances are
//! filtered so the *smaller* radius still satisfies the Theorem 3.2
//! guarantee (the feasibility boundaries are defined by the rendezvous
//! radius).

use crate::report::{Ctx, ExperimentOutput};
use crate::runner::{Campaign, FixedPair, SummaryExt, Visibility};
use crate::table::Table;
use crate::workloads::sample;
use rv_core::{almost_universal_rv, Budget};
use rv_model::{classify_with_eps, Instance, TargetClass};
use rv_numeric::{ratio, Ratio};

const FAMILIES: [TargetClass; 5] = [
    TargetClass::Type1,
    TargetClass::Type2,
    TargetClass::Type3,
    TargetClass::Type4Speed,
    TargetClass::Type4Rotation,
];

/// Shrinks the radius and keeps only instances still guaranteed by
/// Theorem 3.2 at the smaller radius.
fn keep_guaranteed_at(instances: Vec<Instance>, factor: Ratio) -> Vec<Instance> {
    instances
        .into_iter()
        .filter(|inst| {
            let shrunk = Instance {
                r: &inst.r * &factor,
                ..inst.clone()
            };
            classify_with_eps(&shrunk, 1e-9).aur_guaranteed()
        })
        .collect()
}

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> ExperimentOutput {
    let factor = ratio(1, 4);
    let mut table = Table::new([
        "family",
        "instances (boundary-safe)",
        "met (r2 = r/4)",
        "median time (asym)",
        "median time (equal r)",
    ]);
    let mut stats = Vec::new();

    for class in FAMILIES {
        let raw = sample(
            class,
            ctx.scale.per_family / 2,
            0x74_0000 + class.expected() as u64,
        );
        let instances = keep_guaranteed_at(raw, factor.clone());
        let budget = Budget::default().segments(ctx.scale.success_segments);

        // Section 5's per-agent radii are a Visibility option on the AUR
        // program pair, not a separate solve entry point.
        let asym_solver = FixedPair::symmetric("aur-asym", |_| almost_universal_rv()).visibility(
            Visibility::Scaled {
                a: Ratio::one(),
                b: factor.clone(),
            },
        );
        let asym = Campaign::new(asym_solver, budget.clone()).run(&instances);
        let equal = Campaign::aur(budget).run(&instances);
        let (sa, se) = (&asym.stats, &equal.stats);
        table.row([
            format!("{class:?}"),
            instances.len().to_string(),
            sa.rate(),
            sa.median_time_str(),
            se.median_time_str(),
        ]);
        stats.push((format!("{class:?} / asym"), asym.stats.clone()));
        stats.push((format!("{class:?} / equal"), equal.stats.clone()));
    }

    ctx.write("t4_asymmetric_radii.md", &table.to_markdown());
    ctx.write("t4_asymmetric_radii.csv", &table.to_csv());
    ctx.write_stats_json("t4_stats.json", "t4", &stats);

    let markdown = format!(
        "Section 5 extension: r1 = r, r2 = r/4. The far-sighted agent \
         freezes on first sight; the other closes the remaining distance \
         during its phase searches. Meetings take longer than with equal \
         radii but still succeed.\n\n{}",
        table.to_markdown()
    );
    ExperimentOutput {
        id: "t4",
        title: "Section 5 — different visibility radii",
        markdown,
        artifacts: vec![
            "t4_asymmetric_radii.md".into(),
            "t4_asymmetric_radii.csv".into(),
            "t4_stats.json".into(),
        ],
    }
}
