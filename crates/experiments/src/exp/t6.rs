//! T6 — the Latecomers contract (Section 2, GATHER(2) from \[38\]) and the
//! delay-ratio sweep across the feasibility boundary.
//!
//! For shifted synchronous frames the contract is `t > dist − r`. We sweep
//! the ratio `ρ = t / (dist − r)` through the boundary: below 1 the
//! instance is infeasible (Lemma 3.8) and Latecomers must fail; above 1
//! it must meet, faster the larger the slack.

use crate::report::{Ctx, ExperimentOutput};
use crate::runner::{Campaign, FixedPair, SummaryExt};
use crate::table::Table;
use crate::util::fnum;
use rv_baselines::latecomers;
use rv_core::Budget;
use rv_model::{classify, Instance};
use rv_numeric::{ratio, Ratio};

const RATIOS: [(i64, i64); 8] = [
    (1, 4),
    (1, 2),
    (3, 4),
    (9, 10),
    (11, 10),
    (3, 2),
    (2, 1),
    (4, 1),
];

/// Geometry pool: off-grid displacement directions, mixed radii.
fn geometries(n: usize) -> Vec<(Ratio, Ratio, Ratio)> {
    (0..n)
        .map(|k| {
            let x = &ratio(3, 1) + &(&ratio(1, 8) * &Ratio::from_int((k % 10) as i64));
            let y = &ratio(1, 1) + &(&ratio(1, 4) * &Ratio::from_int((k % 7) as i64));
            let r = &ratio(1, 2) + &(&ratio(1, 8) * &Ratio::from_int((k % 5) as i64));
            (x, y, r)
        })
        .collect()
}

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> ExperimentOutput {
    let per_point = (ctx.scale.per_family / 8).max(5);
    let geoms = geometries(per_point);
    let mut table = Table::new([
        "t / (dist − r)",
        "feasible",
        "met",
        "median time",
        "min dist / r",
    ]);
    let mut stats = Vec::new();

    for (p, q) in RATIOS {
        let rho = ratio(p, q);
        let feasible = p > q;
        let instances: Vec<Instance> = geoms
            .iter()
            .map(|(x, y, r)| {
                let base = Instance::builder()
                    .position(x.clone(), y.clone())
                    .r(r.clone())
                    .build()
                    .unwrap();
                let boundary = base.initial_dist() - base.r.to_f64();
                let t = Ratio::from_f64_exact(boundary).unwrap() * &rho;
                Instance { t, ..base }
            })
            .collect();
        for inst in &instances {
            assert_eq!(classify(inst).feasible(), feasible, "ρ={p}/{q}: {inst}");
        }
        let budget = if feasible {
            Budget::default().segments(ctx.scale.success_segments)
        } else {
            Budget::default().segments(ctx.scale.failure_segments)
        };
        let report = Campaign::new(FixedPair::symmetric("latecomers", |_| latecomers()), budget)
            .run(&instances);
        let s = &report.stats;
        table.row([
            format!("{p}/{q}"),
            if feasible { "yes".into() } else { "no".into() },
            s.rate(),
            s.median_time_str(),
            fnum(s.min_dist_over_r),
        ]);
        stats.push((format!("rho={p}/{q}"), report.stats));
    }

    ctx.write("t6_latecomers_contract.md", &table.to_markdown());
    ctx.write("t6_latecomers_contract.csv", &table.to_csv());
    ctx.write_stats_json("t6_stats.json", "t6", &stats);

    let markdown = format!(
        "Contract validation of the reconstructed Latecomers procedure \
         (DESIGN.md §3.2) with a sweep of the delay across the feasibility \
         boundary t = dist − r: failure below, success above — the \
         crossover the theory demands.\n\n{}",
        table.to_markdown()
    );
    ExperimentOutput {
        id: "t6",
        title: "Latecomers contract and delay sweep",
        markdown,
        artifacts: vec![
            "t6_latecomers_contract.md".into(),
            "t6_latecomers_contract.csv".into(),
            "t6_stats.json".into(),
        ],
    }
}
