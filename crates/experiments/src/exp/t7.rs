//! T7 — phase-bound calibration: the paper's worst-case phase indices
//! (Lemmas 3.2–3.5, evaluated by `rv_core::analysis`) against the phases
//! actually observed in simulation.
//!
//! The proofs guarantee rendezvous *by the end of* phase `i_bound`; the
//! observed phase must therefore never exceed the bound on instances the
//! budget can carry that far. The gap between the two is the price of
//! worst-case analysis — typically several phases, because meetings
//! usually happen through whichever block aligns first, not the one the
//! proof reasons about.

use crate::report::{Ctx, ExperimentOutput};
use crate::runner::Campaign;
use crate::table::Table;
use crate::workloads::sample;
use rv_core::analysis::{phase_bound, phase_of_time};
use rv_core::Budget;
use rv_model::TargetClass;
use rv_numeric::Ratio;

const FAMILIES: [TargetClass; 5] = [
    TargetClass::Type1,
    TargetClass::Type2,
    TargetClass::Type3,
    TargetClass::Type4Speed,
    TargetClass::Type4Rotation,
];

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> ExperimentOutput {
    let n = (ctx.scale.per_family / 4).max(10);
    let mut table = Table::new([
        "family",
        "met",
        "observed phase (median)",
        "observed phase (max)",
        "paper bound (median)",
        "violations (observed > bound)",
    ]);
    let mut stats = Vec::new();

    for class in FAMILIES {
        let instances = sample(class, n, 0x77_0000 + class.expected() as u64);
        let budget = Budget::default().segments(ctx.scale.success_segments);
        let report = Campaign::aur(budget).run(&instances);

        let mut observed: Vec<u32> = Vec::new();
        let mut bounds: Vec<u32> = Vec::new();
        let mut violations = 0usize;
        let mut met = 0usize;
        for (inst, res) in instances.iter().zip(&report.records) {
            let bound = phase_bound(inst).expect("guaranteed classes have bounds");
            bounds.push(bound);
            if let Some(t) = res.time {
                met += 1;
                let phase = match Ratio::from_f64_exact(t) {
                    Some(tr) => phase_of_time(&tr),
                    None => u32::MAX,
                };
                observed.push(phase);
                if phase > bound {
                    violations += 1;
                }
            }
        }
        observed.sort_unstable();
        bounds.sort_unstable();
        let med = |v: &[u32]| {
            if v.is_empty() {
                "—".to_string()
            } else {
                v[v.len() / 2].to_string()
            }
        };
        table.row([
            format!("{class:?}"),
            format!("{met}/{n}"),
            med(&observed),
            observed
                .last()
                .map(|v| v.to_string())
                .unwrap_or_else(|| "—".into()),
            med(&bounds),
            violations.to_string(),
        ]);
        stats.push((format!("{class:?}"), report.stats));
    }

    ctx.write("t7_phase_bounds.md", &table.to_markdown());
    ctx.write("t7_phase_bounds.csv", &table.to_csv());
    ctx.write_stats_json("t7_stats.json", "t7", &stats);

    let markdown = format!(
        "Observed meeting phases vs the worst-case phase indices from the \
         correctness proofs (Lemmas 3.2–3.5). The bound must never be \
         violated; the slack between observed and bound quantifies how \
         conservative the paper's analysis is in practice.\n\n{}",
        table.to_markdown()
    );
    ExperimentOutput {
        id: "t7",
        title: "Phase-bound calibration (Lemmas 3.2–3.5)",
        markdown,
        artifacts: vec![
            "t7_phase_bounds.md".into(),
            "t7_phase_bounds.csv".into(),
            "t7_stats.json".into(),
        ],
    }
}
