//! Plain-text / Markdown table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Renders GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], w: &[usize]| {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(line, " {:<width$} |", c, width = w[i]);
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &w));
        out.push('\n');
        let mut sep = String::from("|");
        for width in &w {
            let _ = write!(sep, "{:-<width$}|", "", width = width + 2);
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &w));
            out.push('\n');
        }
        out
    }

    /// Renders CSV (RFC-4180-ish; quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_alignment() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "12345"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| name "));
        assert!(lines[1].starts_with("|---"));
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }
}
