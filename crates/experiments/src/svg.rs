//! Minimal self-contained SVG rendering: line charts (for figure series)
//! and plane canvases (for trajectories and geometric constructions).
//! No external crates — the experiment harness emits plain SVG 1.1 text.

use rv_geometry::Vec2;
use std::fmt::Write as _;

const PALETTE: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
];

/// One polyline series of a chart or canvas.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points (chart: x/y values; canvas: plane coordinates).
    pub points: Vec<(f64, f64)>,
    /// Draw markers at each point.
    pub markers: bool,
    /// Dashed stroke.
    pub dashed: bool,
    /// Markers only, no connecting line (scatter plot).
    pub scatter: bool,
}

impl Series {
    /// A plain line series.
    pub fn line<S: Into<String>>(label: S, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.into(),
            points,
            markers: false,
            dashed: false,
            scatter: false,
        }
    }

    /// A line series with point markers.
    pub fn marked<S: Into<String>>(label: S, points: Vec<(f64, f64)>) -> Series {
        Series {
            markers: true,
            ..Series::line(label, points)
        }
    }

    /// Dashed variant of this series.
    pub fn dashed(mut self) -> Series {
        self.dashed = true;
        self
    }

    /// A scatter series (markers only, no connecting line).
    pub fn scatter<S: Into<String>>(label: S, points: Vec<(f64, f64)>) -> Series {
        Series {
            markers: true,
            scatter: true,
            ..Series::line(label, points)
        }
    }
}

/// A line chart with linear or log₁₀ axes.
#[derive(Clone, Debug)]
pub struct Chart {
    /// Title rendered above the plot area.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Log-scale the x axis (data must be positive).
    pub log_x: bool,
    /// Log-scale the y axis (data must be positive).
    pub log_y: bool,
    /// The series to draw.
    pub series: Vec<Series>,
}

impl Chart {
    /// An empty chart with labels.
    pub fn new<S: Into<String>>(title: S, x_label: S, y_label: S) -> Chart {
        Chart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            log_x: false,
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push(&mut self, s: Series) -> &mut Chart {
        self.series.push(s);
        self
    }

    /// Renders the chart to SVG text.
    pub fn render(&self) -> String {
        const W: f64 = 760.0;
        const H: f64 = 480.0;
        const ML: f64 = 70.0; // margins
        const MR: f64 = 20.0;
        const MT: f64 = 40.0;
        const MB: f64 = 55.0;

        let tx = |v: f64| if self.log_x { v.max(1e-300).log10() } else { v };
        let ty = |v: f64| if self.log_y { v.max(1e-300).log10() } else { v };

        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, y) in &s.points {
                if x.is_finite() && y.is_finite() {
                    xs.push(tx(x));
                    ys.push(ty(y));
                }
            }
        }
        let (x0, x1) = span(&xs);
        let (y0, y1) = span(&ys);
        let sx = move |v: f64| ML + (tx(v) - x0) / (x1 - x0) * (W - ML - MR);
        let sy = move |v: f64| H - MB - (ty(v) - y0) / (y1 - y0) * (H - MT - MB);

        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="sans-serif" font-size="12">"#
        );
        let _ = writeln!(out, r#"<rect width="{W}" height="{H}" fill="white"/>"#);
        let _ = writeln!(
            out,
            r#"<text x="{}" y="22" text-anchor="middle" font-size="15">{}</text>"#,
            W / 2.0,
            xml(&self.title)
        );
        // Axes box.
        let _ = writeln!(
            out,
            r##"<rect x="{ML}" y="{MT}" width="{}" height="{}" fill="none" stroke="#333"/>"##,
            W - ML - MR,
            H - MT - MB
        );
        // Ticks: 5 per axis.
        for k in 0..=4 {
            let fx = x0 + (x1 - x0) * k as f64 / 4.0;
            let px = ML + (W - ML - MR) * k as f64 / 4.0;
            let label = if self.log_x {
                sig3(10f64.powf(fx))
            } else {
                sig3(fx)
            };
            let _ = writeln!(
                out,
                r##"<line x1="{px}" y1="{}" x2="{px}" y2="{}" stroke="#999"/><text x="{px}" y="{}" text-anchor="middle">{label}</text>"##,
                H - MB,
                H - MB + 5.0,
                H - MB + 20.0
            );
            let fy = y0 + (y1 - y0) * k as f64 / 4.0;
            let py = H - MB - (H - MT - MB) * k as f64 / 4.0;
            let label = if self.log_y {
                sig3(10f64.powf(fy))
            } else {
                sig3(fy)
            };
            let _ = writeln!(
                out,
                r##"<line x1="{}" y1="{py}" x2="{ML}" y2="{py}" stroke="#999"/><text x="{}" y="{}" text-anchor="end">{label}</text>"##,
                ML - 5.0,
                ML - 8.0,
                py + 4.0
            );
        }
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
            W / 2.0,
            H - 12.0,
            xml(&self.x_label)
        );
        let _ = writeln!(
            out,
            r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            H / 2.0,
            H / 2.0,
            xml(&self.y_label)
        );
        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let dash = if s.dashed {
                r#" stroke-dasharray="6 4""#
            } else {
                ""
            };
            let pts: Vec<String> = s
                .points
                .iter()
                .filter(|(x, y)| x.is_finite() && y.is_finite())
                .map(|&(x, y)| format!("{:.2},{:.2}", sx(x), sy(y)))
                .collect();
            if pts.len() > 1 && !s.scatter {
                let _ = writeln!(
                    out,
                    r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"{dash}/>"#,
                    pts.join(" ")
                );
            }
            if s.markers {
                for p in &pts {
                    let mut it = p.split(',');
                    let (px, py) = (it.next().unwrap(), it.next().unwrap());
                    let _ = writeln!(out, r#"<circle cx="{px}" cy="{py}" r="3" fill="{color}"/>"#);
                }
            }
            // Legend entry.
            let ly = MT + 16.0 + i as f64 * 16.0;
            let _ = writeln!(
                out,
                r#"<line x1="{}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"{dash}/><text x="{}" y="{}">{}</text>"#,
                W - MR - 150.0,
                W - MR - 120.0,
                W - MR - 114.0,
                ly + 4.0,
                xml(&s.label)
            );
        }
        out.push_str("</svg>\n");
        out
    }
}

/// An equal-aspect plane canvas for trajectories and geometric figures.
#[derive(Clone, Debug)]
pub struct Canvas {
    /// Figure title.
    pub title: String,
    /// Polyline series in plane coordinates.
    pub series: Vec<Series>,
    /// Extra labelled points.
    pub points: Vec<(Vec2, String)>,
    /// Infinite lines, given as (point, direction-radians, label).
    pub lines: Vec<(Vec2, f64, String)>,
}

impl Canvas {
    /// An empty canvas.
    pub fn new<S: Into<String>>(title: S) -> Canvas {
        Canvas {
            title: title.into(),
            series: Vec::new(),
            points: Vec::new(),
            lines: Vec::new(),
        }
    }

    /// Adds a trajectory polyline.
    pub fn push(&mut self, s: Series) -> &mut Canvas {
        self.series.push(s);
        self
    }

    /// Adds a labelled point.
    pub fn point<S: Into<String>>(&mut self, p: Vec2, label: S) -> &mut Canvas {
        self.points.push((p, label.into()));
        self
    }

    /// Adds an infinite line through `p` with inclination `radians`.
    pub fn line<S: Into<String>>(&mut self, p: Vec2, radians: f64, label: S) -> &mut Canvas {
        self.lines.push((p, radians, label.into()));
        self
    }

    /// Renders the canvas to SVG text with equal aspect ratio.
    pub fn render(&self) -> String {
        const W: f64 = 640.0;
        const H: f64 = 640.0;
        const M: f64 = 60.0;

        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for s in &self.series {
            for &(x, y) in &s.points {
                if x.is_finite() && y.is_finite() {
                    xs.push(x);
                    ys.push(y);
                }
            }
        }
        for (p, _) in &self.points {
            xs.push(p.x);
            ys.push(p.y);
        }
        for (p, _, _) in &self.lines {
            xs.push(p.x);
            ys.push(p.y);
        }
        let (x0, x1) = span(&xs);
        let (y0, y1) = span(&ys);
        // Equal aspect: expand the smaller span.
        let cx = (x0 + x1) / 2.0;
        let cy = (y0 + y1) / 2.0;
        let half = ((x1 - x0).max(y1 - y0)) / 2.0;
        let (x0, x1) = (cx - half, cx + half);
        let y0 = cy - half;
        let scale = (W - 2.0 * M) / (x1 - x0);
        let sx = move |x: f64| M + (x - x0) * scale;
        let sy = move |y: f64| H - M - (y - y0) * scale;

        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="sans-serif" font-size="12">"#
        );
        let _ = writeln!(out, r#"<rect width="{W}" height="{H}" fill="white"/>"#);
        let _ = writeln!(
            out,
            r#"<text x="{}" y="24" text-anchor="middle" font-size="15">{}</text>"#,
            W / 2.0,
            xml(&self.title)
        );
        // Infinite lines clipped to the view.
        for (i, (p, ang, label)) in self.lines.iter().enumerate() {
            let d = Vec2::new(ang.cos(), ang.sin());
            let reach = 4.0 * half.max(1.0);
            let a = *p - d * reach;
            let b = *p + d * reach;
            let color = PALETTE[(self.series.len() + i) % PALETTE.len()];
            let _ = writeln!(
                out,
                r#"<line x1="{:.2}" y1="{:.2}" x2="{:.2}" y2="{:.2}" stroke="{color}" stroke-dasharray="8 5"/><text x="{:.2}" y="{:.2}" fill="{color}">{}</text>"#,
                sx(a.x),
                sy(a.y),
                sx(b.x),
                sy(b.y),
                sx(p.x) + 6.0,
                sy(p.y) - 6.0,
                xml(label)
            );
        }
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let dash = if s.dashed {
                r#" stroke-dasharray="6 4""#
            } else {
                ""
            };
            let pts: Vec<String> = s
                .points
                .iter()
                .filter(|(x, y)| x.is_finite() && y.is_finite())
                .map(|&(x, y)| format!("{:.2},{:.2}", sx(x), sy(y)))
                .collect();
            if pts.len() > 1 {
                let _ = writeln!(
                    out,
                    r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.5"{dash}/>"#,
                    pts.join(" ")
                );
            }
            let ly = 40.0 + i as f64 * 16.0;
            let _ = writeln!(
                out,
                r#"<line x1="{}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"{dash}/><text x="{}" y="{}">{}</text>"#,
                W - 190.0,
                W - 160.0,
                W - 154.0,
                ly + 4.0,
                xml(&s.label)
            );
        }
        for (p, label) in &self.points {
            let _ = writeln!(
                out,
                r##"<circle cx="{:.2}" cy="{:.2}" r="4" fill="#111"/><text x="{:.2}" y="{:.2}">{}</text>"##,
                sx(p.x),
                sy(p.y),
                sx(p.x) + 7.0,
                sy(p.y) + 4.0,
                xml(label)
            );
        }
        out.push_str("</svg>\n");
        out
    }
}

/// Three-significant-digit tick label (Rust's format! has no `%g`).
fn sig3(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if !(0.001..100_000.0).contains(&a) {
        return format!("{v:.2e}");
    }
    let digits = (3 - a.log10().floor() as i32 - 1).max(0) as usize;
    format!("{v:.digits$}")
}

fn span(vals: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in vals {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return (0.0, 1.0);
    }
    if (hi - lo).abs() < 1e-12 {
        (lo - 1.0, hi + 1.0)
    } else {
        let pad = (hi - lo) * 0.05;
        (lo - pad, hi + pad)
    }
}

fn xml(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_valid_svg() {
        let mut c = Chart::new("test", "x", "y");
        c.push(Series::marked(
            "s1",
            vec![(0.0, 1.0), (1.0, 2.0), (2.0, 1.5)],
        ));
        let svg = c.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("circle"));
        assert!(svg.contains("s1"));
    }

    #[test]
    fn log_chart_handles_positive_data() {
        let mut c = Chart::new("log", "x", "y");
        c.log_y = true;
        c.push(Series::line("s", vec![(1.0, 10.0), (2.0, 1e6)]));
        let svg = c.render();
        assert!(svg.contains("1e6") || svg.contains("1e+06") || svg.contains("polyline"));
    }

    #[test]
    fn canvas_equal_aspect() {
        let mut c = Canvas::new("traj");
        c.push(Series::line("path", vec![(0.0, 0.0), (10.0, 0.0)]));
        c.point(Vec2::new(5.0, 1.0), "B");
        c.line(Vec2::new(0.0, 0.5), 0.0, "L");
        let svg = c.render();
        assert!(svg.contains("stroke-dasharray"));
        assert!(svg.contains("B</text>"));
    }

    #[test]
    fn degenerate_data_does_not_panic() {
        let mut c = Chart::new("flat", "x", "y");
        c.push(Series::line("s", vec![(1.0, 1.0), (1.0, 1.0)]));
        let _ = c.render();
        let empty = Chart::new("empty", "x", "y").render();
        assert!(empty.contains("</svg>"));
    }

    #[test]
    fn xml_escaping() {
        assert_eq!(xml("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }
}
