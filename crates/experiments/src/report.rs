//! Experiment context: scale knobs and artifact output.

use crate::workloads::Scale;
use std::fs;
use std::path::PathBuf;

/// Shared context passed to every experiment.
#[derive(Clone, Debug)]
pub struct Ctx {
    /// Scale (instance counts, budgets).
    pub scale: Scale,
    /// Output directory for artifacts (`results/` by default).
    pub out_dir: PathBuf,
}

impl Ctx {
    /// Context writing into `out_dir` at the given scale.
    pub fn new(out_dir: impl Into<PathBuf>, scale: Scale) -> Ctx {
        Ctx {
            scale,
            out_dir: out_dir.into(),
        }
    }

    /// Writes an artifact file, creating the directory as needed.
    pub fn write(&self, name: &str, content: &str) {
        fs::create_dir_all(&self.out_dir).expect("create results dir");
        let path = self.out_dir.join(name);
        fs::write(&path, content).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    }
}

/// The result of one experiment: a Markdown section plus artifact names.
#[derive(Clone, Debug)]
pub struct ExperimentOutput {
    /// Experiment id ("t1", "f6", …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Markdown body (tables, key numbers, interpretation).
    pub markdown: String,
    /// Artifact files written under the context's output dir.
    pub artifacts: Vec<String>,
}

impl ExperimentOutput {
    /// Renders the full Markdown section.
    pub fn section(&self) -> String {
        let mut s = format!(
            "## {} — {}\n\n{}\n",
            self.id.to_uppercase(),
            self.title,
            self.markdown
        );
        if !self.artifacts.is_empty() {
            s.push_str("\nArtifacts: ");
            s.push_str(
                &self
                    .artifacts
                    .iter()
                    .map(|a| format!("`{a}`"))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            s.push('\n');
        }
        s
    }
}
