//! Experiment context: scale knobs, artifact output, and the
//! machine-readable JSON emitter for campaign statistics.

use crate::workloads::Scale;
use rv_core::batch::CampaignStats;
use rv_core::json;
use std::fs;
use std::path::PathBuf;

/// Shared context passed to every experiment.
#[derive(Clone, Debug)]
pub struct Ctx {
    /// Scale (instance counts, budgets).
    pub scale: Scale,
    /// Output directory for artifacts (`results/` by default).
    pub out_dir: PathBuf,
}

impl Ctx {
    /// Context writing into `out_dir` at the given scale.
    pub fn new(out_dir: impl Into<PathBuf>, scale: Scale) -> Ctx {
        Ctx {
            scale,
            out_dir: out_dir.into(),
        }
    }

    /// Writes an artifact file, creating the directory as needed.
    pub fn write(&self, name: &str, content: &str) {
        fs::create_dir_all(&self.out_dir).expect("create results dir");
        let path = self.out_dir.join(name);
        fs::write(&path, content).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    }

    /// Writes labelled campaign statistics as a JSON artifact (see
    /// [`stats_json`]).
    pub fn write_stats_json(&self, name: &str, id: &str, entries: &[(String, CampaignStats)]) {
        self.write(name, &stats_json(id, entries));
    }
}

/// Renders labelled campaign statistics as machine-readable JSON
/// (schema 2: a `"schema"` version field at the top, per-campaign stats
/// rendered by [`CampaignStats::to_json`], which now includes the
/// `infeasible` count):
///
/// ```json
/// {"schema": 2, "experiment": "t2", "campaigns": [{"label": "...", "stats": {"n": 30, ...}}]}
/// ```
///
/// Hand-rolled via [`rv_core::json`] (the offline dependency set has no
/// serde); non-finite floats become `null` so the output is strict JSON.
pub fn stats_json(id: &str, entries: &[(String, CampaignStats)]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 2,\n");
    out.push_str(&format!("  \"experiment\": {},\n", json::string(id)));
    out.push_str("  \"campaigns\": [\n");
    for (k, (label, s)) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": {}, \"stats\": {}}}",
            json::string(label),
            s.to_json()
        ));
        if k + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_core::batch::{CampaignStats, RunRecord};
    use rv_model::Classification;

    #[test]
    fn stats_json_is_wellformed() {
        let records = vec![
            RunRecord {
                class: Classification::Type3,
                feasible: true,
                met: true,
                time: Some(12.5),
                segments: 100,
                min_dist: 1.0,
                radius: 2.0,
            },
            RunRecord {
                class: Classification::Infeasible,
                feasible: false,
                met: false,
                time: None,
                segments: 400,
                min_dist: 5.0,
                radius: 2.0,
            },
        ];
        let stats = CampaignStats::of(&records);
        let json = stats_json("t9", &[("family \"x\"".into(), stats)]);
        assert!(json.contains("\"schema\": 2"));
        assert!(json.contains("\"experiment\": \"t9\""));
        assert!(json.contains("\\\"x\\\""));
        assert!(json.contains("\"met\": 1"));
        assert!(json.contains("\"infeasible\": 1"));
        assert!(json.contains("\"class\": \"type 3\""));
        // Empty campaigns produce `null` for the non-finite min ratio.
        let empty = stats_json("t0", &[("empty".into(), CampaignStats::of(&[]))]);
        assert!(empty.contains("\"schema\": 2"));
        assert!(empty.contains("\"min_dist_over_r\": null"));
        // Balanced braces/brackets as a cheap well-formedness proxy.
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = json.matches(open).count();
            let closes = json.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close}");
        }
    }
}

/// The result of one experiment: a Markdown section plus artifact names.
#[derive(Clone, Debug)]
pub struct ExperimentOutput {
    /// Experiment id ("t1", "f6", …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Markdown body (tables, key numbers, interpretation).
    pub markdown: String,
    /// Artifact files written under the context's output dir.
    pub artifacts: Vec<String>,
}

impl ExperimentOutput {
    /// Renders the full Markdown section.
    pub fn section(&self) -> String {
        let mut s = format!(
            "## {} — {}\n\n{}\n",
            self.id.to_uppercase(),
            self.title,
            self.markdown
        );
        if !self.artifacts.is_empty() {
            s.push_str("\nArtifacts: ");
            s.push_str(
                &self
                    .artifacts
                    .iter()
                    .map(|a| format!("`{a}`"))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            s.push('\n');
        }
        s
    }
}
