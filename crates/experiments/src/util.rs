//! Small helpers shared by the experiment modules.

use rv_geometry::Vec2;
use rv_numeric::Ratio;
use rv_trajectory::{AgentAttrs, Instr, Motion};

/// Extracts the polyline of an agent's trajectory: the positions at each
/// motion breakpoint, up to `max_points` or absolute time `until`.
pub fn polyline<P>(attrs: AgentAttrs, program: P, max_points: usize, until: &Ratio) -> Vec<Vec2>
where
    P: Iterator<Item = Instr>,
{
    let mut pts = vec![attrs.origin];
    let motion = Motion::new(attrs, program);
    for seg in motion {
        if &seg.start > until || pts.len() >= max_points {
            break;
        }
        match &seg.end {
            None => break,
            Some(end) => {
                let capped = end.clone().min(until.clone());
                let dur = (&capped - &seg.start).to_f64();
                let p = seg.pos_at_offset(dur);
                if pts.last() != Some(&p) {
                    pts.push(p);
                }
            }
        }
    }
    pts
}

/// Formats a float compactly for tables.
pub fn fnum(v: f64) -> String {
    if !v.is_finite() {
        return "∞".into();
    }
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if !(1e-3..1e6).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_geometry::Compass;
    use rv_numeric::ratio;

    #[test]
    fn polyline_of_square() {
        let prog = vec![
            Instr::go(Compass::East, ratio(2, 1)),
            Instr::go(Compass::North, ratio(2, 1)),
        ];
        let pts = polyline(
            AgentAttrs::reference(),
            prog.into_iter(),
            100,
            &ratio(100, 1),
        );
        assert_eq!(
            pts,
            vec![Vec2::ZERO, Vec2::new(2.0, 0.0), Vec2::new(2.0, 2.0),]
        );
    }

    #[test]
    fn polyline_respects_time_cap() {
        let prog = vec![Instr::go(Compass::East, ratio(10, 1))];
        let pts = polyline(AgentAttrs::reference(), prog.into_iter(), 100, &ratio(4, 1));
        assert_eq!(pts.last(), Some(&Vec2::new(4.0, 0.0)));
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(7.3456789), "7.346");
        assert_eq!(fnum(1234.5), "1234.5");
        assert_eq!(fnum(f64::INFINITY), "∞");
        assert!(fnum(1e9).contains('e'));
    }
}
