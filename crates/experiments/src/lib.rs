//! # rv-experiments — the evaluation harness
//!
//! Regenerates every table and figure of the reproduction (`EXPERIMENTS.md`
//! and `DESIGN.md` §5): seeded workloads per instance family, a
//! crossbeam-based parallel batch runner, Markdown/CSV table rendering and
//! self-contained SVG charts/canvases, plus one module per experiment.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p rv-experiments --bin experiments -- all
//! ```

#![warn(missing_docs)]

pub mod exp;
pub mod parallel;
pub mod report;
pub mod runner;
pub mod svg;
pub mod table;
pub mod util;
pub mod workloads;

pub use report::{Ctx, ExperimentOutput};
