//! # rv-experiments — the evaluation harness
//!
//! Regenerates every table and figure of the reproduction (`EXPERIMENTS.md`
//! and `DESIGN.md` §5): seeded workloads per instance family, batch
//! execution through [`rv_core::batch::Campaign`], Markdown/CSV/JSON
//! rendering and self-contained SVG charts/canvases, plus one module per
//! experiment.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p rv-experiments --bin experiments -- all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp;
pub mod report;
pub mod runner;
pub mod svg;
pub mod table;
pub mod util;
pub mod workloads;

pub use report::{Ctx, ExperimentOutput};
