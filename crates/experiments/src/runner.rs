//! Batch execution of solver runs with summary statistics.

use crate::parallel::par_map;
use rv_model::Instance;
use rv_sim::SimReport;

/// Distilled result of one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Whether rendezvous happened.
    pub met: bool,
    /// Simulated meeting time (f64; None when not met).
    pub time: Option<f64>,
    /// Motion segments processed.
    pub segments: u64,
    /// Minimum distance observed.
    pub min_dist: f64,
    /// The instance radius (for min-dist normalisation).
    pub radius: f64,
}

impl RunResult {
    /// Builds from a full report.
    pub fn from_report(inst: &Instance, report: &SimReport) -> RunResult {
        RunResult {
            met: report.met(),
            time: report.meeting_time(),
            segments: report.segments,
            min_dist: report.min_dist,
            radius: inst.r.to_f64(),
        }
    }
}

/// Runs `solver` over all instances in parallel.
pub fn run_batch<F>(instances: &[Instance], solver: F) -> Vec<RunResult>
where
    F: Fn(&Instance) -> SimReport + Sync,
{
    par_map(instances, |inst| {
        RunResult::from_report(inst, &solver(inst))
    })
}

/// Aggregate statistics of a batch.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Number of runs.
    pub n: usize,
    /// Number of successful rendezvous.
    pub met: usize,
    /// Median meeting time over successful runs.
    pub median_time: Option<f64>,
    /// Maximum meeting time over successful runs.
    pub max_time: Option<f64>,
    /// Median segments over all runs.
    pub median_segments: u64,
    /// Minimum over runs of (min distance / radius); < 1 means some run
    /// got inside the radius.
    pub min_dist_over_r: f64,
}

impl Summary {
    /// Summarises a batch.
    pub fn of(results: &[RunResult]) -> Summary {
        let n = results.len();
        let met = results.iter().filter(|r| r.met).count();
        let mut times: Vec<f64> = results.iter().filter_map(|r| r.time).collect();
        times.sort_by(|a, b| a.total_cmp(b));
        let mut segs: Vec<u64> = results.iter().map(|r| r.segments).collect();
        segs.sort_unstable();
        let min_ratio = results
            .iter()
            .map(|r| r.min_dist / r.radius)
            .fold(f64::INFINITY, f64::min);
        Summary {
            n,
            met,
            median_time: median_f64(&times),
            max_time: times.last().copied(),
            median_segments: if segs.is_empty() {
                0
            } else {
                segs[segs.len() / 2]
            },
            min_dist_over_r: min_ratio,
        }
    }

    /// `met/n` as a display string.
    pub fn rate(&self) -> String {
        format!("{}/{}", self.met, self.n)
    }

    /// Median time display (or "—").
    pub fn median_time_str(&self) -> String {
        match self.median_time {
            Some(t) => crate::util::fnum(t),
            None => "—".into(),
        }
    }
}

fn median_f64(sorted: &[f64]) -> Option<f64> {
    if sorted.is_empty() {
        None
    } else {
        Some(sorted[sorted.len() / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_core::{solve_dedicated, Budget};
    use rv_model::TargetClass;

    #[test]
    fn batch_runs_and_summarises() {
        let instances = crate::workloads::sample(TargetClass::S1, 6, 11);
        let budget = Budget::default().segments(10_000);
        let results = run_batch(&instances, |inst| solve_dedicated(inst, &budget));
        let s = Summary::of(&results);
        assert_eq!(s.n, 6);
        assert_eq!(s.met, 6, "dedicated beeline must meet all S1 instances");
        assert!(s.median_time.is_some());
        assert!(s.min_dist_over_r <= 1.0 + 1e-6);
    }
}
