//! Batch execution for experiments, built on [`rv_core::batch`].
//!
//! The bespoke per-experiment loops (and the old lock-per-item parallel
//! runner) are gone: every experiment constructs a [`Campaign`] — a
//! first-class [`Solver`] value + per-run budget + parallelism — and
//! consumes its records and aggregate stats. Baseline programs plug in as
//! [`FixedPair`] solvers (with [`Visibility`] for Section 5's per-agent
//! radii) rather than ad-hoc closures. This module only adds the
//! experiment-facing sugar: re-exports under the historical names and
//! display helpers for tables.

use crate::util::fnum;
use std::path::Path;

pub use rv_core::batch::{
    Campaign, CampaignReport, CampaignStats as Summary, RunRecord as RunResult, StatsAccumulator,
};
pub use rv_core::exec::{
    CommandExecutor, ExecError, Executor, LocalExecutor, PoolExecutor, SubprocessExecutor,
    WorkerCommand,
};
pub use rv_core::shard::{plan as plan_shards, CampaignSpec, ShardError, SolverSpec};
pub use rv_core::{Aur, Closure, Dedicated, FixedPair, Solver, Visibility};

/// The standard worker invocation for an `rv-shard` binary at `worker`:
/// `worker` mode with the host's cores split across `concurrency`
/// same-host workers (`cores / concurrency`, minimum 1 thread each) so a
/// local scatter does not oversubscribe the CPU. Pass the number of
/// workers that actually run at once — the in-flight cap when one is
/// set, else the shard count. Thread counts never change a single
/// output byte.
pub fn worker_command(worker: &Path, concurrency: usize) -> WorkerCommand {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let per_worker = (cores / concurrency.max(1)).max(1);
    WorkerCommand::new(worker)
        .arg("worker")
        .arg("--threads")
        .arg(per_worker.to_string())
}

/// The `--shards N` execution path: scatters the seeded campaign
/// `(spec, seed, 0..n)` over `shards` subprocesses of `worker` (an
/// `rv-shard` binary, invoked via [`worker_command`]) through a
/// [`SubprocessExecutor`] and gathers the merged stats — byte-identical
/// to [`CampaignSpec::run_local`] by the executor determinism guarantee.
pub fn run_sharded(
    worker: &Path,
    spec: &CampaignSpec,
    seed: u64,
    n: usize,
    shards: usize,
) -> Result<rv_core::CampaignStats, ExecError> {
    SubprocessExecutor::new(worker_command(worker, shards.min(n.max(1))))
        .shards(shards)
        .execute_stats(spec, seed, n, None)
}

/// The persistent-pool execution path: `workers` long-lived `rv-shard`
/// session workers steal `unit`-sized index units (`0` = auto) off a
/// shared queue until the campaign drains — byte-identical to
/// [`CampaignSpec::run_local`] like every backend, but with spawn cost
/// paid once per worker instead of once per shard. For repeated
/// campaigns, build one [`PoolExecutor`] and call `execute_stats`
/// yourself: the pool's sessions survive between calls.
pub fn run_pooled(
    worker: &Path,
    spec: &CampaignSpec,
    seed: u64,
    n: usize,
    workers: usize,
    unit: usize,
) -> Result<rv_core::CampaignStats, ExecError> {
    PoolExecutor::new(worker_command(worker, workers.max(1)))
        .workers(workers)
        .unit(unit)
        .execute_stats(spec, seed, n, None)
}

/// Table-display helpers for [`Summary`] (kept out of `rv-core`, which
/// stays formatting-free).
pub trait SummaryExt {
    /// Median time as a display string (or "—").
    fn median_time_str(&self) -> String;
    /// Max time as a display string (or "—").
    fn max_time_str(&self) -> String;
}

impl SummaryExt for Summary {
    fn median_time_str(&self) -> String {
        self.median_time.map(fnum).unwrap_or_else(|| "—".into())
    }

    fn max_time_str(&self) -> String {
        self.max_time.map(fnum).unwrap_or_else(|| "—".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_core::{solve_dedicated, Budget};
    use rv_model::TargetClass;

    #[test]
    fn campaign_runs_and_summarises() {
        let instances = crate::workloads::sample(TargetClass::S1, 6, 11);
        let report = Campaign::new(Dedicated, Budget::default().segments(10_000)).run(&instances);
        let s = &report.stats;
        assert_eq!(s.n, 6);
        assert_eq!(s.met, 6, "dedicated beeline must meet all S1 instances");
        assert_eq!(s.infeasible, 0);
        assert!(s.median_time.is_some());
        assert_ne!(s.median_time_str(), "—");
        assert!(s.min_dist_over_r <= 1.0 + 1e-6);
    }

    #[test]
    fn dedicated_constructor_matches_custom_closure() {
        let instances = crate::workloads::sample(TargetClass::Type2, 4, 3);
        let budget = Budget::default().segments(50_000);
        let dedicated = Campaign::dedicated(budget.clone());
        let custom = Campaign::custom(budget, solve_dedicated);
        assert_eq!(dedicated.solver_name(), "dedicated");
        assert_eq!(custom.solver_name(), "custom");
        assert_eq!(dedicated.run(&instances), custom.run(&instances));
    }
}
