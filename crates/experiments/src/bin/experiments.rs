//! CLI entry point: regenerates the reproduction's tables and figures, and
//! offers ad-hoc `classify` / `solve` subcommands for single instances.
//!
//! ```text
//! experiments [ids…] [--quick] [--out DIR]     # run experiments (default: all)
//! experiments classify "r=1 x=3 y=4 t=4"       # Theorem 3.1 verdict
//! experiments solve    "r=1 x=3 y=1 tau=2" [--segments N]
//! ```

use rv_core::analysis::phase_bound;
use rv_core::{classify, solve, solve_dedicated, Budget};
use rv_experiments::exp::{run_one, ALL_IDS};
use rv_experiments::report::Ctx;
use rv_experiments::workloads::Scale;
use rv_model::Instance;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("classify") => cmd_classify(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        _ => cmd_experiments(&args),
    }
}

/// Splits `args` into (instance tokens, flag tokens with their values).
fn split_flags(args: &[String]) -> (Vec<String>, Vec<String>) {
    let mut inst = Vec::new();
    let mut flags = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(a) = iter.next() {
        if a.starts_with("--") {
            flags.push(a.clone());
            if let Some(v) = iter.peek() {
                if !v.starts_with("--") && !v.contains('=') {
                    flags.push(iter.next().unwrap().clone());
                }
            }
        } else {
            inst.push(a.clone());
        }
    }
    (inst, flags)
}

fn parse_instance(args: &[String]) -> Instance {
    let text = args.to_vec().join(" ");
    text.parse().unwrap_or_else(|e| {
        eprintln!("cannot parse instance {text:?}: {e}");
        eprintln!("example: r=1 x=3 y=4/3 phi=1/2pi tau=1 v=1 t=2 chi=-1");
        std::process::exit(2);
    })
}

fn cmd_classify(args: &[String]) {
    let (inst_args, _) = split_flags(args);
    let inst = parse_instance(&inst_args);
    let class = classify(&inst);
    println!("instance      : {inst}");
    println!("classification: {class}");
    println!("feasible      : {}", class.feasible());
    println!("AUR-guaranteed: {}", class.aur_guaranteed());
    if let Some(bound) = phase_bound(&inst) {
        println!("phase bound   : {bound} (worst case, Lemmas 3.2–3.5)");
    }
    println!("dist          : {:.6}", inst.initial_dist());
    println!("dist(proj)    : {:.6}", inst.proj_dist());
}

fn cmd_solve(args: &[String]) {
    let (inst_args, flags) = split_flags(args);
    let inst = parse_instance(&inst_args);
    let mut budget = Budget::default();
    let mut iter = flags.iter();
    while let Some(a) = iter.next() {
        if a == "--segments" {
            let n = iter.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--segments needs a number");
                std::process::exit(2);
            });
            budget = budget.segments(n);
        }
    }
    println!("instance      : {inst}  [{}]", classify(&inst));
    let start = Instant::now();
    let report = solve(&inst, &budget);
    println!(
        "AlmostUniversalRV: {} ({} segments, {:.2?} wall)",
        report.outcome,
        report.segments,
        start.elapsed()
    );
    if !report.met() {
        println!("  closest approach: {:.6}", report.min_dist);
    }
    let ded = solve_dedicated(&inst, &budget);
    println!("dedicated        : {}", ded.outcome);
}

fn cmd_experiments(args: &[String]) {
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::full();
    let mut out_dir = String::from("results");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::quick(),
            "--out" => out_dir = iter.next().expect("--out needs a directory").clone(),
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            id if ALL_IDS.contains(&id) => ids.push(id.to_string()),
            other => {
                eprintln!("unknown argument {other:?}; known ids: {ALL_IDS:?}");
                std::process::exit(2);
            }
        }
    }
    if ids.is_empty() {
        ids.extend(ALL_IDS.iter().map(|s| s.to_string()));
    }

    let ctx = Ctx::new(&out_dir, scale);
    let mut summary = String::from("# Experiment summary\n\n");
    summary.push_str(&format!(
        "Scale: {} instances/family, {} / {} segment budgets.\n\n",
        ctx.scale.per_family, ctx.scale.success_segments, ctx.scale.failure_segments
    ));
    let total = Instant::now();
    for id in &ids {
        let start = Instant::now();
        eprintln!("running {id} …");
        for output in run_one(id, &ctx) {
            let section = output.section();
            println!("{section}");
            summary.push_str(&section);
            summary.push('\n');
        }
        eprintln!("  {id} done in {:?}", start.elapsed());
    }
    summary.push_str(&format!("\nTotal wall time: {:?}\n", total.elapsed()));
    ctx.write("summary.md", &summary);
    eprintln!("all done in {:?}; artifacts in {out_dir}/", total.elapsed());
}
