//! `rv-shard` — the cross-process campaign shard worker and its
//! executor-backed driver CLI (the schema-3 wire protocol; see
//! `rv_core::exec`, `rv_core::shard`, and `WIRE.md`).
//!
//! ```text
//! rv-shard worker [--threads T] [--flaky]
//!     Read one shard_spec JSON line from stdin, execute the shard,
//!     stream one record line per finished run to stdout, then the final
//!     shard_result line. Exit 0 on success, 2 on a bad spec. With
//!     --flaky, deterministically fail (exit 3, after streaming one
//!     genuine record) whenever the RV_SHARD_ATTEMPT environment
//!     variable is 0/absent — a test mode proving driver retry works.
//!
//! rv-shard campaign --n N [--shards K] [--seed S] [--solver aur|dedicated]
//!                   [--classes type3,s1,...] [--segments M]
//!                   [--transport local|subprocess|command] [--local]
//!                   [--retries R] [--max-inflight M] [--wrap "ssh host --"]
//!     Run the seeded campaign through the chosen executor backend and
//!     print the gathered CampaignStats JSON — byte-identical on every
//!     backend. --local is shorthand for --transport local; --wrap
//!     (which implies --transport command) prefixes every worker
//!     invocation with the given command, e.g. an ssh hop.
//! ```

use rv_core::exec::{CommandExecutor, Executor, LocalExecutor, SubprocessExecutor, ATTEMPT_ENV};
use rv_core::shard::{CampaignSpec, ShardResult, ShardSpec, SolverSpec};
use rv_core::{wire, JsonLinesSink, RecordSink};
use rv_experiments::runner::worker_command;
use rv_model::TargetClass;
use std::io::BufRead;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("worker") => worker(&args[1..]),
        Some("campaign") => campaign(&args[1..]),
        _ => {
            eprintln!(
                "usage: rv-shard worker [--threads T] [--flaky] | \
                 rv-shard campaign --n N [--shards K] [--seed S] [--solver aur|dedicated] \
                 [--classes a,b,...] [--segments M] [--transport local|subprocess|command] \
                 [--local] [--retries R] [--max-inflight M] [--wrap CMD]"
            );
            std::process::exit(2);
        }
    }
}

/// Worker mode: one shard spec in, record lines + shard result out.
/// `--threads T` caps this worker's campaign threads (0 = all cores) so
/// K same-host workers can split the CPU instead of oversubscribing it.
/// `--flaky` injects a deterministic first-attempt failure (see below).
fn worker(args: &[String]) {
    let threads: usize = parsed_flag(args, "--threads", 0);
    let mut line = String::new();
    if let Err(e) = std::io::stdin().lock().read_line(&mut line) {
        eprintln!("rv-shard worker: cannot read shard spec: {e}");
        std::process::exit(2);
    }
    let spec = match wire::decode_shard_spec(line.trim()) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("rv-shard worker: bad shard spec: {e}");
            std::process::exit(2);
        }
    };
    // Records stream as wire lines the moment each run lands; Stdout is
    // line-buffered and the sink flushes, so the parent sees them live.
    let sink = Arc::new(JsonLinesSink::new(std::io::stdout()));
    if args.iter().any(|a| a == "--flaky") && attempt_number() == 0 {
        // Fault-injection mode: stream ONE genuine record (a partial
        // stream the driver must discard wholesale — replaying it would
        // double-deliver the index), then die. Attempts >= 1 run clean,
        // so exactly one retry per shard recovers the campaign.
        if !spec.range.is_empty() {
            let first = ShardSpec {
                range: spec.range.start..spec.range.start + 1,
                ..spec.clone()
            };
            let _ = first.execute_threads(sink.clone() as Arc<dyn RecordSink>, 1);
        }
        eprintln!("rv-shard worker: injected flaky failure (attempt 0)");
        std::process::exit(3);
    }
    let result: ShardResult = spec.execute_threads(sink.clone() as Arc<dyn RecordSink>, threads);
    if sink.failed() {
        eprintln!("rv-shard worker: record stream write failed");
        std::process::exit(1);
    }
    println!("{}", wire::encode_shard_result(&result));
}

/// The zero-based attempt number the executor put in the environment
/// (absent or unparseable counts as the first attempt).
fn attempt_number() -> u32 {
    std::env::var(ATTEMPT_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag_value(args, name) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("rv-shard: {name} needs a valid value, got {raw:?}");
            std::process::exit(2);
        }),
    }
}

/// Driver mode: build the requested executor backend, run the campaign
/// through it, print the stats JSON (byte-identical on every backend).
fn campaign(args: &[String]) {
    let n: usize = parsed_flag(args, "--n", 0);
    if n == 0 {
        eprintln!("rv-shard campaign: --n N (> 0) is required");
        std::process::exit(2);
    }
    let shards: usize = parsed_flag(args, "--shards", 1);
    let seed: u64 = parsed_flag(args, "--seed", 0);
    let segments: u64 = parsed_flag(args, "--segments", 60_000);
    let retries: u32 = parsed_flag(args, "--retries", 0);
    let max_inflight: usize = parsed_flag(args, "--max-inflight", 0);
    let solver_name = flag_value(args, "--solver").unwrap_or("aur");
    let solver = SolverSpec::from_name(solver_name).unwrap_or_else(|e| {
        eprintln!("rv-shard: {e}");
        std::process::exit(2);
    });
    let classes: Vec<TargetClass> = flag_value(args, "--classes")
        .unwrap_or("type3")
        .split(',')
        .map(|name| {
            TargetClass::from_name(name.trim()).unwrap_or_else(|| {
                eprintln!("rv-shard: unknown target class {name:?}");
                std::process::exit(2);
            })
        })
        .collect();
    let spec = CampaignSpec::new(solver, classes, segments);

    let wrap: Option<Vec<String>> =
        flag_value(args, "--wrap").map(|raw| raw.split_whitespace().map(String::from).collect());
    let transport =
        flag_value(args, "--transport").unwrap_or(if args.iter().any(|a| a == "--local") {
            "local"
        } else if wrap.is_some() {
            "command"
        } else {
            "subprocess"
        });

    if wrap.is_some() && transport != "command" {
        // A wrapper the chosen transport would silently drop means the
        // run would execute somewhere other than where the user asked.
        eprintln!("rv-shard campaign: --wrap conflicts with --transport {transport} (or --local)");
        std::process::exit(2);
    }
    // Split the host's cores over the workers that actually run at once:
    // the in-flight cap when one is set, else one worker per planned
    // shard (plan clamps the shard count to n, so clamp here too).
    let planned = shards.min(n.max(1)).max(1);
    let concurrency = match max_inflight {
        0 => planned,
        cap => planned.min(cap),
    };
    let executor: Box<dyn Executor> = match transport {
        "local" => Box::new(LocalExecutor::new()),
        "subprocess" => Box::new(
            SubprocessExecutor::new(worker_command(&own_binary(), concurrency))
                .shards(shards)
                .retries(retries)
                .max_inflight(max_inflight),
        ),
        "command" => {
            let wrap = wrap.filter(|w| !w.is_empty()).unwrap_or_else(|| {
                eprintln!("rv-shard campaign: --transport command needs --wrap CMD");
                std::process::exit(2);
            });
            Box::new(
                CommandExecutor::new(wrap, worker_command(&own_binary(), concurrency))
                    .shards(shards)
                    .retries(retries)
                    .max_inflight(max_inflight),
            )
        }
        other => {
            eprintln!(
                "rv-shard campaign: unknown transport {other:?} (local | subprocess | command)"
            );
            std::process::exit(2);
        }
    };

    // Stats-only path: execute_stats keeps driver memory at O(shard
    // size) even for huge campaigns (records are never materialised).
    match executor.execute_stats(&spec, seed, n, None) {
        Ok(stats) => println!("{}", stats.to_json()),
        Err(e) => {
            eprintln!("rv-shard campaign [{}]: {e}", executor.name());
            std::process::exit(1);
        }
    }
}

/// Locates this very binary — the campaign driver scatters over
/// subprocesses of itself in `worker` mode.
fn own_binary() -> std::path::PathBuf {
    std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("rv-shard: cannot locate own binary: {e}");
        std::process::exit(1);
    })
}
