//! `rv-shard` — the cross-process campaign shard worker and its
//! scatter/gather driver CLI (the schema-3 wire protocol, see
//! `rv_core::shard`).
//!
//! ```text
//! rv-shard worker
//!     Read one shard_spec JSON line from stdin, execute the shard,
//!     stream one record line per finished run to stdout, then the final
//!     shard_result line. Exit 0 on success, 2 on a bad spec.
//!
//! rv-shard campaign --n N [--shards K] [--seed S] [--solver aur|dedicated]
//!                   [--classes type3,s1,...] [--segments M] [--local]
//!     Scatter the seeded campaign over K worker subprocesses of this
//!     same binary (or run single-process with --local) and print the
//!     gathered CampaignStats JSON — byte-identical either way.
//! ```

use rv_core::shard::{CampaignSpec, ShardResult, SolverSpec};
use rv_core::{wire, JsonLinesSink, RecordSink};
use rv_experiments::runner::run_sharded;
use rv_model::TargetClass;
use std::io::BufRead;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("worker") => worker(&args[1..]),
        Some("campaign") => campaign(&args[1..]),
        _ => {
            eprintln!(
                "usage: rv-shard worker [--threads T] | rv-shard campaign --n N [--shards K] \
                 [--seed S] [--solver aur|dedicated] [--classes a,b,...] [--segments M] [--local]"
            );
            std::process::exit(2);
        }
    }
}

/// Worker mode: one shard spec in, record lines + shard result out.
/// `--threads T` caps this worker's campaign threads (0 = all cores) so
/// K same-host workers can split the CPU instead of oversubscribing it.
fn worker(args: &[String]) {
    let threads: usize = parsed_flag(args, "--threads", 0);
    let mut line = String::new();
    if let Err(e) = std::io::stdin().lock().read_line(&mut line) {
        eprintln!("rv-shard worker: cannot read shard spec: {e}");
        std::process::exit(2);
    }
    let spec = match wire::decode_shard_spec(line.trim()) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("rv-shard worker: bad shard spec: {e}");
            std::process::exit(2);
        }
    };
    // Records stream as wire lines the moment each run lands; Stdout is
    // line-buffered and the sink flushes, so the parent sees them live.
    let sink = Arc::new(JsonLinesSink::new(std::io::stdout()));
    let result: ShardResult = spec.execute_threads(sink.clone() as Arc<dyn RecordSink>, threads);
    if sink.failed() {
        eprintln!("rv-shard worker: record stream write failed");
        std::process::exit(1);
    }
    println!("{}", wire::encode_shard_result(&result));
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag_value(args, name) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("rv-shard: {name} needs a valid value, got {raw:?}");
            std::process::exit(2);
        }),
    }
}

/// Driver mode: plan, scatter over subprocesses of this binary, gather,
/// print the stats JSON.
fn campaign(args: &[String]) {
    let n: usize = parsed_flag(args, "--n", 0);
    if n == 0 {
        eprintln!("rv-shard campaign: --n N (> 0) is required");
        std::process::exit(2);
    }
    let shards: usize = parsed_flag(args, "--shards", 1);
    let seed: u64 = parsed_flag(args, "--seed", 0);
    let segments: u64 = parsed_flag(args, "--segments", 60_000);
    let solver_name = flag_value(args, "--solver").unwrap_or("aur");
    let solver = SolverSpec::from_name(solver_name).unwrap_or_else(|| {
        eprintln!("rv-shard: unknown solver {solver_name:?} (aur | dedicated)");
        std::process::exit(2);
    });
    let classes: Vec<TargetClass> = flag_value(args, "--classes")
        .unwrap_or("type3")
        .split(',')
        .map(|name| {
            TargetClass::from_name(name.trim()).unwrap_or_else(|| {
                eprintln!("rv-shard: unknown target class {name:?}");
                std::process::exit(2);
            })
        })
        .collect();
    let spec = CampaignSpec::new(solver, classes, segments);

    let stats = if args.iter().any(|a| a == "--local") {
        spec.run_local(seed, n).stats
    } else {
        // Scatter over subprocesses of this very binary in worker mode.
        let me = std::env::current_exe().unwrap_or_else(|e| {
            eprintln!("rv-shard: cannot locate own binary: {e}");
            std::process::exit(1);
        });
        match run_sharded(&me, &spec, seed, n, shards) {
            Ok(stats) => stats,
            Err(e) => {
                eprintln!("rv-shard campaign: {e}");
                std::process::exit(1);
            }
        }
    };
    println!("{}", stats.to_json());
}
