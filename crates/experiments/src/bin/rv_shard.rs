//! `rv-shard` — the cross-process campaign shard worker and its
//! executor-backed driver CLI (the schema-3 wire protocol; see
//! `rv_core::exec`, `rv_core::shard`, and `WIRE.md`).
//!
//! ```text
//! rv-shard worker [--threads T] [--flaky]
//!     Speak the schema-3 worker protocol on stdin/stdout. A first line
//!     of kind shard_spec runs the one-shot protocol: execute the
//!     shard, stream one record line per finished run, then the final
//!     shard_result line. A first line of kind campaign_spec opens a
//!     persistent *session*: each subsequent task line executes one
//!     index unit (record lines, then a unit_telemetry line, then a
//!     unit_done line), a new campaign_spec line re-keys the session,
//!     and stdin EOF ends it with exit 0. Exit 0 on success, 2 on a
//!     bad spec. With --flaky, deterministically fail (exit 3, after
//!     streaming one genuine record) on first attempts — the one-shot
//!     protocol reads the attempt from the RV_SHARD_ATTEMPT environment
//!     variable, a session reads it from each task line — a test mode
//!     proving driver retry works.
//!
//! rv-shard campaign --n N [--shards K] [--seed S] [--solver aur|dedicated]
//!                   [--classes type3,s1,...] [--segments M]
//!                   [--transport local|subprocess|command|pool] [--local]
//!                   [--retries R] [--max-inflight M] [--unit U]
//!                   [--wrap "ssh host --"] [--utilization] [--cache DIR]
//!     Run the seeded campaign through the chosen executor backend and
//!     print the gathered CampaignStats JSON — byte-identical on every
//!     backend. --local is shorthand for --transport local; --wrap
//!     (which implies --transport command) prefixes every worker
//!     invocation with the given command, e.g. an ssh hop. With
//!     --transport pool, --shards sets the persistent worker count and
//!     --unit the steal-unit size in indices (0 = auto), and
//!     --utilization prints a second JSON line after the stats — the
//!     per-worker utilization fold of the pool's unit telemetry
//!     (UtilizationReport; idle workers report zero units). The stats
//!     line itself is unaffected. --utilization with any other
//!     transport is a usage error (only the pool has worker slots).
//!     --cache DIR attaches a content-addressed result cache (created
//!     if missing): a warm re-run replays finished shards from DIR
//!     byte-identically and only re-executes shards whose spec hash
//!     changed. A DIR that exists but is not a directory is a usage
//!     error (exit 2).
//! ```

use rv_core::cache::{CacheError, CachedExecutor, ResultCache};
use rv_core::exec::{
    CommandExecutor, Executor, LocalExecutor, PoolExecutor, SubprocessExecutor, UtilizationReport,
    ATTEMPT_ENV,
};
use rv_core::shard::{CampaignSpec, ShardResult, ShardSpec, SolverSpec, UnitDone, UnitTelemetry};
use rv_core::wire::Line;
use rv_core::{wire, JsonLinesSink, RecordSink};
use rv_experiments::runner::worker_command;
use rv_model::TargetClass;
use std::io::{BufRead, StdinLock};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("worker") => worker(&args[1..]),
        Some("campaign") => campaign(&args[1..]),
        _ => {
            eprintln!(
                "usage: rv-shard worker [--threads T] [--flaky] | \
                 rv-shard campaign --n N [--shards K] [--seed S] [--solver aur|dedicated] \
                 [--classes a,b,...] [--segments M] \
                 [--transport local|subprocess|command|pool] \
                 [--local] [--retries R] [--max-inflight M] [--unit U] [--wrap CMD] \
                 [--utilization] [--cache DIR]"
            );
            std::process::exit(2);
        }
    }
}

/// Worker mode: a shard spec in, record lines + shard result out — or,
/// when the first line is a campaign spec, a persistent session serving
/// task lines until stdin EOF. `--threads T` caps this worker's
/// campaign threads (0 = all cores) so K same-host workers can split
/// the CPU instead of oversubscribing it. `--flaky` injects
/// deterministic first-attempt failures (see below).
fn worker(args: &[String]) {
    // Validate the full flag set up front: an unknown flag silently
    // ignored here would make a typo'd driver invocation (say
    // `--thread 2`) run with defaults and *look* healthy.
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--flaky" => i += 1,
            "--threads" => i += 2,
            other => {
                eprintln!(
                    "rv-shard worker: unknown flag {other:?} \
                     (usage: rv-shard worker [--threads T] [--flaky])"
                );
                std::process::exit(2);
            }
        }
    }
    let threads: usize = parsed_flag(args, "--threads", 0);
    let flaky = args.iter().any(|a| a == "--flaky");
    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    let mut line = String::new();
    if let Err(e) = input.read_line(&mut line) {
        eprintln!("rv-shard worker: cannot read shard spec: {e}");
        std::process::exit(2);
    }
    match wire::decode_line(line.trim()) {
        Ok(Line::ShardSpec(spec)) => one_shot(spec, threads, flaky),
        Ok(Line::CampaignSpec { spec, seed }) => session(input, spec, seed, threads, flaky),
        Ok(other) => {
            eprintln!("rv-shard worker: bad shard spec: expected a shard_spec or campaign_spec line, got {other:?}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("rv-shard worker: bad shard spec: {e}");
            std::process::exit(2);
        }
    }
}

/// The one-shot worker protocol: execute the single handed-over shard,
/// stream its records, print the final `shard_result` line.
fn one_shot(spec: ShardSpec, threads: usize, flaky: bool) {
    // Records stream as wire lines the moment each run lands; Stdout is
    // line-buffered and the sink flushes, so the parent sees them live.
    let sink = Arc::new(JsonLinesSink::new(std::io::stdout()));
    if flaky && attempt_number() == 0 {
        // Fault-injection mode: stream ONE genuine record (a partial
        // stream the driver must discard wholesale — replaying it would
        // double-deliver the index), then die. Attempts >= 1 run clean,
        // so exactly one retry per shard recovers the campaign.
        if !spec.range.is_empty() {
            let first = ShardSpec {
                range: spec.range.start..spec.range.start + 1,
                ..spec.clone()
            };
            let _ = first.execute_threads(sink.clone() as Arc<dyn RecordSink>, 1);
        }
        eprintln!("rv-shard worker: injected flaky failure (attempt 0)");
        std::process::exit(3);
    }
    let result: ShardResult = spec.execute_threads(sink.clone() as Arc<dyn RecordSink>, threads);
    if sink.failed() {
        eprintln!("rv-shard worker: record stream write failed");
        std::process::exit(1);
    }
    println!("{}", wire::encode_shard_result(&result));
}

/// The persistent-session worker protocol (the `PoolExecutor` side):
/// keyed by the opening `campaign_spec` line, each `task` line executes
/// one index unit and answers with record lines, one `unit_telemetry`
/// line, and one `unit_done` line. A fresh `campaign_spec` line re-keys
/// the session in place; stdin EOF is the graceful shutdown (exit 0).
fn session(mut input: StdinLock<'_>, spec: CampaignSpec, seed: u64, threads: usize, flaky: bool) {
    let mut session = (spec, seed);
    let sink = Arc::new(JsonLinesSink::new(std::io::stdout()));
    let mut line = String::new();
    loop {
        line.clear();
        match input.read_line(&mut line) {
            // EOF: the driver closed the session; all handed-out units
            // were answered, so this worker's job is done.
            Ok(0) => std::process::exit(0),
            Ok(_) => {}
            Err(e) => {
                eprintln!("rv-shard worker: session read failed: {e}");
                std::process::exit(1);
            }
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match wire::decode_line(trimmed) {
            Ok(Line::CampaignSpec { spec, seed }) => session = (spec, seed),
            Ok(Line::Task(task)) => {
                if flaky && task.attempt == 0 {
                    // Session-mode fault injection: same contract as the
                    // one-shot worker, with the attempt number read off
                    // the task line instead of the environment.
                    if !task.range.is_empty() {
                        let first = ShardSpec {
                            campaign: session.0.clone(),
                            seed: session.1,
                            range: task.range.start..task.range.start + 1,
                            shard_id: task.task_id,
                        };
                        let _ = first.execute_threads(sink.clone() as Arc<dyn RecordSink>, 1);
                    }
                    eprintln!("rv-shard worker: injected flaky failure (attempt 0)");
                    std::process::exit(3);
                }
                let started = std::time::Instant::now();
                let shard = ShardSpec {
                    campaign: session.0.clone(),
                    seed: session.1,
                    range: task.range.clone(),
                    shard_id: task.task_id,
                };
                let result = shard.execute_threads(sink.clone() as Arc<dyn RecordSink>, threads);
                let telemetry = UnitTelemetry {
                    task_id: task.task_id,
                    attempt: task.attempt,
                    wall_ns: started.elapsed().as_nanos() as u64,
                };
                sink.write_line(&wire::encode_unit_telemetry(&telemetry));
                sink.write_line(&wire::encode_unit_done(&UnitDone {
                    task_id: task.task_id,
                    start: result.start,
                    acc: result.acc,
                }));
                if sink.failed() {
                    eprintln!("rv-shard worker: record stream write failed");
                    std::process::exit(1);
                }
            }
            Ok(other) => {
                eprintln!("rv-shard worker: unexpected session line: {other:?}");
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("rv-shard worker: bad session line: {e}");
                std::process::exit(2);
            }
        }
    }
}

/// The zero-based attempt number the executor put in the environment
/// (absent or unparseable counts as the first attempt).
fn attempt_number() -> u32 {
    std::env::var(ATTEMPT_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The operand following `name`, or `None` when the flag is absent. A
/// *dangling* flag — present but followed by nothing, or by another
/// `--flag` — is a usage error (exit 2), not a silent fall-through to
/// the default: `campaign --n 100 --seed` must not quietly run with
/// seed 0.
fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    let at = args.iter().position(|a| a == name)?;
    match args.get(at + 1).map(String::as_str) {
        Some(value) if !value.starts_with("--") => Some(value),
        _ => {
            eprintln!("rv-shard: {name} needs a value");
            std::process::exit(2);
        }
    }
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag_value(args, name) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("rv-shard: {name} needs a valid value, got {raw:?}");
            std::process::exit(2);
        }),
    }
}

/// Driver mode: build the requested executor backend, run the campaign
/// through it, print the stats JSON (byte-identical on every backend).
fn campaign(args: &[String]) {
    if !args.iter().any(|a| a == "--n") {
        // Without this check the default would be n = 0 — an "empty
        // campaign" that prints all-zero stats and exits 0, which reads
        // like success.
        eprintln!("rv-shard campaign: --n N is required");
        std::process::exit(2);
    }
    let n: usize = parsed_flag(args, "--n", 0);
    if n == 0 {
        eprintln!("rv-shard campaign: --n N (> 0) is required");
        std::process::exit(2);
    }
    let shards: usize = parsed_flag(args, "--shards", 1);
    let seed: u64 = parsed_flag(args, "--seed", 0);
    let segments: u64 = parsed_flag(args, "--segments", 60_000);
    let retries: u32 = parsed_flag(args, "--retries", 0);
    let max_inflight: usize = parsed_flag(args, "--max-inflight", 0);
    let unit: usize = parsed_flag(args, "--unit", 0);
    let solver_name = flag_value(args, "--solver").unwrap_or("aur");
    let solver = SolverSpec::from_name(solver_name).unwrap_or_else(|e| {
        eprintln!("rv-shard: {e}");
        std::process::exit(2);
    });
    let classes: Vec<TargetClass> = flag_value(args, "--classes")
        .unwrap_or("type3")
        .split(',')
        .map(|name| {
            TargetClass::from_name(name.trim()).unwrap_or_else(|| {
                eprintln!("rv-shard: unknown target class {name:?}");
                std::process::exit(2);
            })
        })
        .collect();
    let spec = CampaignSpec::new(solver, classes, segments);

    let wrap: Option<Vec<String>> =
        flag_value(args, "--wrap").map(|raw| raw.split_whitespace().map(String::from).collect());
    let transport =
        flag_value(args, "--transport").unwrap_or(if args.iter().any(|a| a == "--local") {
            "local"
        } else if wrap.is_some() {
            "command"
        } else {
            "subprocess"
        });

    if wrap.is_some() && transport != "command" {
        // A wrapper the chosen transport would silently drop means the
        // run would execute somewhere other than where the user asked.
        eprintln!("rv-shard campaign: --wrap conflicts with --transport {transport} (or --local)");
        std::process::exit(2);
    }
    let utilization = args.iter().any(|a| a == "--utilization");
    if utilization && transport != "pool" {
        // Only the pool has persistent worker slots to report on;
        // silently ignoring the flag would look like "all workers idle".
        eprintln!("rv-shard campaign: --utilization requires --transport pool");
        std::process::exit(2);
    }
    // The cache opens (creating DIR if needed) before any worker spawns
    // or protocol I/O: a path that exists but is not a directory is a
    // usage error, not a mid-campaign failure.
    let cache: Option<Arc<ResultCache>> =
        flag_value(args, "--cache").map(|dir| match ResultCache::open(dir) {
            Ok(cache) => Arc::new(cache),
            Err(e @ CacheError::NotADirectory { .. }) => {
                eprintln!("rv-shard campaign: {e}");
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("rv-shard campaign: cannot open cache: {e}");
                std::process::exit(1);
            }
        });
    // Split the host's cores over the workers that actually run at once:
    // the in-flight cap when one is set, else one worker per planned
    // shard (plan clamps the shard count to n, so clamp here too).
    let planned = shards.min(n.max(1)).max(1);
    let concurrency = match max_inflight {
        0 => planned,
        cap => planned.min(cap),
    };
    let executor: Box<dyn Executor> = match transport {
        // The local engine has no shard structure to reuse, so --cache
        // wraps it: the whole campaign is one cache entry.
        "local" => match &cache {
            Some(cache) => Box::new(CachedExecutor::new(LocalExecutor::new(), Arc::clone(cache))),
            None => Box::new(LocalExecutor::new()),
        },
        "subprocess" => {
            let mut exec = SubprocessExecutor::new(worker_command(&own_binary(), concurrency))
                .shards(shards)
                .retries(retries)
                .max_inflight(max_inflight);
            if let Some(cache) = &cache {
                exec = exec.cache(Arc::clone(cache));
            }
            Box::new(exec)
        }
        "command" => {
            let wrap = wrap.filter(|w| !w.is_empty()).unwrap_or_else(|| {
                eprintln!("rv-shard campaign: --transport command needs --wrap CMD");
                std::process::exit(2);
            });
            let mut exec = CommandExecutor::new(wrap, worker_command(&own_binary(), concurrency))
                .shards(shards)
                .retries(retries)
                .max_inflight(max_inflight);
            if let Some(cache) = &cache {
                exec = exec.cache(Arc::clone(cache));
            }
            Box::new(exec)
        }
        // Pool transport: --shards is the persistent worker count and
        // --unit the steal-unit size; max_inflight has no meaning (the
        // pool is its own concurrency bound, one unit per worker). Kept
        // concrete (not boxed) so --utilization can read the
        // worker-tagged telemetry back off the executor afterwards.
        "pool" => {
            let mut pool = PoolExecutor::new(worker_command(&own_binary(), concurrency))
                .workers(shards)
                .unit(unit)
                .retries(retries);
            if let Some(cache) = &cache {
                pool = pool.cache(Arc::clone(cache));
            }
            match pool.execute_stats(&spec, seed, n, None) {
                Ok(stats) => {
                    println!("{}", stats.to_json());
                    if utilization {
                        // One row per pool slot, idle workers included —
                        // the slot count mirrors PoolExecutor::workers'
                        // clamp to at least one.
                        let report = UtilizationReport::from_worker_telemetry(
                            shards.max(1),
                            &pool.take_worker_telemetry(),
                        );
                        println!("{}", report.to_json());
                    }
                }
                Err(e) => {
                    eprintln!("rv-shard campaign [{}]: {e}", pool.name());
                    std::process::exit(1);
                }
            }
            return;
        }
        other => {
            eprintln!(
                "rv-shard campaign: unknown transport {other:?} \
                 (local | subprocess | command | pool)"
            );
            std::process::exit(2);
        }
    };

    // Stats-only path: execute_stats keeps driver memory at O(shard
    // size) even for huge campaigns (records are never materialised).
    match executor.execute_stats(&spec, seed, n, None) {
        Ok(stats) => println!("{}", stats.to_json()),
        Err(e) => {
            eprintln!("rv-shard campaign [{}]: {e}", executor.name());
            std::process::exit(1);
        }
    }
}

/// Locates this very binary — the campaign driver scatters over
/// subprocesses of itself in `worker` mode.
fn own_binary() -> std::path::PathBuf {
    std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("rv-shard: cannot locate own binary: {e}");
        std::process::exit(1);
    })
}
