//! Exact rational numbers built on [`Int`].
//!
//! `Ratio` carries every temporal quantity in the reproduction: local
//! durations, clock rates, wake-up delays, and absolute event times. The
//! correctness arguments of the paper (Claims 3.8–3.10 in particular) hinge
//! on comparing sums of products like `2^(15 i²)·τ` *exactly*; `f64` loses
//! those orderings as soon as a giant wait enters the sum, which is the
//! motivating failure mode for this type (see the `ablation` bench).

use crate::int::Int;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number in lowest terms with a positive denominator.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: Int,
    den: Int,
}

impl Ratio {
    /// Zero.
    pub fn zero() -> Ratio {
        Ratio {
            num: Int::ZERO,
            den: Int::ONE,
        }
    }

    /// One.
    pub fn one() -> Ratio {
        Ratio {
            num: Int::ONE,
            den: Int::ONE,
        }
    }

    /// Builds `num/den` in canonical form. Panics if `den == 0`.
    pub fn new(num: Int, den: Int) -> Ratio {
        assert!(!den.is_zero(), "Ratio with zero denominator");
        let mut r = Ratio { num, den };
        r.normalize();
        r
    }

    /// Builds an integer ratio.
    pub fn from_int(v: impl Into<Int>) -> Ratio {
        Ratio {
            num: v.into(),
            den: Int::ONE,
        }
    }

    /// Builds `2^k` for any `k` (negative `k` gives `1/2^|k|`).
    pub fn pow2(k: i64) -> Ratio {
        if k >= 0 {
            Ratio {
                num: Int::pow2(k as u64),
                den: Int::ONE,
            }
        } else {
            Ratio {
                num: Int::ONE,
                den: Int::pow2((-k) as u64),
            }
        }
    }

    /// Exact conversion from a finite `f64` (every finite double is a
    /// dyadic rational). Returns `None` for NaN/∞.
    pub fn from_f64_exact(v: f64) -> Option<Ratio> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(Ratio::zero());
        }
        let bits = v.to_bits();
        let neg = bits >> 63 == 1;
        let exp_bits = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mantissa, exp) = if exp_bits == 0 {
            // Subnormal: value = frac * 2^(-1074)
            (frac, -1074i64)
        } else {
            ((1u64 << 52) | frac, exp_bits - 1075)
        };
        let m = Int::from(mantissa);
        let m = if neg { -m } else { m };
        Some(&Ratio::from_int(m) * &Ratio::pow2(exp))
    }

    /// Convenience constructor: `p / q` from machine integers.
    pub fn frac(p: i64, q: i64) -> Ratio {
        Ratio::new(Int::from(p), Int::from(q))
    }

    fn normalize(&mut self) {
        if self.den.is_negative() {
            self.num = -&self.num;
            self.den = -&self.den;
        }
        if self.num.is_zero() {
            self.den = Int::ONE;
            return;
        }
        // Integer values are already in lowest terms; skip the gcd (the
        // dominant case — every absolute AUR clock past the first giant
        // wait is an integer).
        if self.den == Int::ONE {
            return;
        }
        let g = self.num.gcd(&self.den);
        if g != Int::ONE {
            self.num = self.num.div_rem(&g).0;
            self.den = self.den.div_rem(&g).0;
        }
    }

    /// Numerator (lowest terms; sign lives here).
    pub fn numer(&self) -> &Int {
        &self.num
    }

    /// Denominator (lowest terms; always positive).
    pub fn denom(&self) -> &Int {
        &self.den
    }

    /// True iff zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// True iff strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// True iff strictly positive.
    #[inline]
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// True iff the denominator is 1.
    pub fn is_integer(&self) -> bool {
        self.den == Int::ONE
    }

    /// True iff equal to one.
    pub fn is_one(&self) -> bool {
        self.num == Int::ONE && self.den == Int::ONE
    }

    /// Sign as -1, 0, +1.
    pub fn signum(&self) -> i32 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(&self) -> Ratio {
        Ratio {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> Ratio {
        assert!(!self.is_zero(), "Ratio::recip of zero");
        Ratio::new(self.den.clone(), self.num.clone())
    }

    /// Largest integer ≤ self.
    pub fn floor(&self) -> Int {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_negative() {
            &q - &Int::ONE
        } else {
            q
        }
    }

    /// Smallest integer ≥ self.
    pub fn ceil(&self) -> Int {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_positive() {
            &q + &Int::ONE
        } else {
            q
        }
    }

    /// Compares by value through borrowed operands, without allocating:
    /// all-`i128` components cross-multiply into an exact 256-bit
    /// comparison, and mixed big/small operands are decided by sign and
    /// bit length whenever possible. Only near-tie big-operand pairs fall
    /// back to materialized products. `Ord for Ratio` delegates here.
    pub fn cmp_ref(&self, other: &Ratio) -> Ordering {
        // Shared denominator (also covers integer vs integer): compare
        // numerators directly.
        if self.den == other.den {
            return self.num.cmp(&other.num);
        }
        let (sa, sb) = (self.num.signum(), other.num.signum());
        if sa != sb {
            return sa.cmp(&sb);
        }
        debug_assert!(sa != 0, "zero is canonically 0/1, caught above");
        if let (Int::Small(a), Int::Small(b), Int::Small(c), Int::Small(d)) =
            (&self.num, &self.den, &other.num, &other.den)
        {
            // a/b vs c/d ⇔ a·d vs c·b (b, d > 0), exact in 256 bits.
            let lhs = wide_mul_u128(a.unsigned_abs(), d.unsigned_abs());
            let rhs = wide_mul_u128(c.unsigned_abs(), b.unsigned_abs());
            return if sa > 0 { lhs.cmp(&rhs) } else { rhs.cmp(&lhs) };
        }
        // |a·d| has bits(a)+bits(d) or one fewer; a gap of ≥ 2 decides
        // without multiplying (the giant-wait vs small-time case).
        let lhs_bits = self.num.bits() + other.den.bits();
        let rhs_bits = other.num.bits() + self.den.bits();
        if lhs_bits + 1 < rhs_bits {
            return if sa > 0 {
                Ordering::Less
            } else {
                Ordering::Greater
            };
        }
        if rhs_bits + 1 < lhs_bits {
            return if sa > 0 {
                Ordering::Greater
            } else {
                Ordering::Less
            };
        }
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }

    /// The smaller of two borrowed ratios (the first on ties), without
    /// cloning either.
    pub fn min_ref<'a>(&'a self, other: &'a Ratio) -> &'a Ratio {
        if other.cmp_ref(self) == Ordering::Less {
            other
        } else {
            self
        }
    }

    /// `min` by value.
    pub fn min(self, other: Ratio) -> Ratio {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// `max` by value.
    pub fn max(self, other: Ratio) -> Ratio {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Squares the value.
    pub fn square(&self) -> Ratio {
        self * self
    }

    /// Approximate conversion to `f64`, saturating to ±∞ when out of range.
    ///
    /// Keeps the top 96 bits of numerator and denominator (truncation error
    /// below `2^-95` relative), divides, and rescales by the discarded
    /// exponent — so asymmetric sizes like `2^601 / 1` or `53-bit / 2^1050`
    /// convert accurately instead of saturating.
    pub fn to_f64(&self) -> f64 {
        if self.num.is_zero() {
            return 0.0;
        }
        let nb = self.num.bits();
        let db = self.den.bits();
        if nb <= 500 && db <= 500 {
            return self.num.to_f64() / self.den.to_f64();
        }
        let ns = nb.saturating_sub(96);
        let ds = db.saturating_sub(96);
        let ntop = self.num.shr_magnitude(ns).to_f64();
        let dtop = self.den.shr_magnitude(ds).to_f64();
        scale_by_pow2(ntop / dtop, ns as i64 - ds as i64)
    }
}

/// `x · y` as a 256-bit `(hi, lo)` pair — exact products of unsigned
/// 128-bit magnitudes for the allocation-free comparison path.
fn wide_mul_u128(x: u128, y: u128) -> (u128, u128) {
    const MASK: u128 = (1u128 << 64) - 1;
    let (x0, x1) = (x & MASK, x >> 64);
    let (y0, y1) = (y & MASK, y >> 64);
    let ll = x0 * y0;
    let lh = x0 * y1;
    let hl = x1 * y0;
    let mid = (ll >> 64) + (lh & MASK) + (hl & MASK);
    let lo = (ll & MASK) | (mid << 64);
    let hi = x1 * y1 + (lh >> 64) + (hl >> 64) + (mid >> 64);
    (hi, lo)
}

/// `x · 2^e` with saturation, splitting the exponent so the intermediate
/// power of two never overflows on its own.
fn scale_by_pow2(x: f64, e: i64) -> f64 {
    if x == 0.0 || !x.is_finite() {
        return x;
    }
    let e = e.clamp(-2200, 2200);
    let h = e / 2;
    let r = e - h;
    x * 2f64.powi(h as i32) * 2f64.powi(r as i32)
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::zero()
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_ref(other)
    }
}

impl Neg for &Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}
impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        -&self
    }
}

impl Add for &Ratio {
    type Output = Ratio;
    fn add(self, rhs: &Ratio) -> Ratio {
        if self.den == rhs.den {
            return Ratio::new(&self.num + &rhs.num, self.den.clone());
        }
        Ratio::new(
            &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Sub for &Ratio {
    type Output = Ratio;
    fn sub(self, rhs: &Ratio) -> Ratio {
        if self.den == rhs.den {
            return Ratio::new(&self.num - &rhs.num, self.den.clone());
        }
        Ratio::new(
            &(&self.num * &rhs.den) - &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Mul for &Ratio {
    type Output = Ratio;
    fn mul(self, rhs: &Ratio) -> Ratio {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = self.num.gcd(&rhs.den);
        let g2 = rhs.num.gcd(&self.den);
        let (n1, d2) = if g1 == Int::ONE {
            (self.num.clone(), rhs.den.clone())
        } else {
            (self.num.div_rem(&g1).0, rhs.den.div_rem(&g1).0)
        };
        let (n2, d1) = if g2 == Int::ONE {
            (rhs.num.clone(), self.den.clone())
        } else {
            (rhs.num.div_rem(&g2).0, self.den.div_rem(&g2).0)
        };
        Ratio {
            num: &n1 * &n2,
            den: &d1 * &d2,
        }
    }
}

impl Div for &Ratio {
    type Output = Ratio;
    fn div(self, rhs: &Ratio) -> Ratio {
        assert!(!rhs.is_zero(), "Ratio division by zero");
        self * &rhs.recip()
    }
}

macro_rules! forward_ratio_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Ratio {
            type Output = Ratio;
            fn $method(self, rhs: Ratio) -> Ratio {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Ratio> for Ratio {
            type Output = Ratio;
            fn $method(self, rhs: &Ratio) -> Ratio {
                (&self).$method(rhs)
            }
        }
        impl $trait<Ratio> for &Ratio {
            type Output = Ratio;
            fn $method(self, rhs: Ratio) -> Ratio {
                self.$method(&rhs)
            }
        }
    };
}
forward_ratio_binop!(Add, add);
forward_ratio_binop!(Sub, sub);
forward_ratio_binop!(Mul, mul);
forward_ratio_binop!(Div, div);

/// Lowest-terms `Ratio` from raw `i128` components with `den > 0`, staying
/// on the inline small-int path (no heap).
fn from_small(num: i128, den: i128) -> Ratio {
    debug_assert!(den > 0);
    if num == 0 {
        return Ratio {
            num: Int::ZERO,
            den: Int::ONE,
        };
    }
    // gcd divides the positive i128 `den`, so the cast back is exact.
    let g = crate::int::gcd_u128(num.unsigned_abs(), den.unsigned_abs()) as i128;
    Ratio {
        num: Int::Small(num / g),
        den: Int::Small(den / g),
    }
}

/// All-small components of `(lhs, rhs)`, if both ratios are inline.
fn small_parts(lhs: &Ratio, rhs: &Ratio) -> Option<(i128, i128, i128, i128)> {
    match (&lhs.num, &lhs.den, &rhs.num, &rhs.den) {
        (Int::Small(a), Int::Small(b), Int::Small(c), Int::Small(d)) => Some((*a, *b, *c, *d)),
        _ => None,
    }
}

/// `a/b + c/d` on the small path, or `None` on i128 overflow.
fn small_add(a: i128, b: i128, c: i128, d: i128) -> Option<Ratio> {
    let (n, den) = if b == d {
        (a.checked_add(c)?, b)
    } else {
        (
            a.checked_mul(d)?.checked_add(c.checked_mul(b)?)?,
            b.checked_mul(d)?,
        )
    };
    Some(from_small(n, den))
}

impl AddAssign<&Ratio> for Ratio {
    fn add_assign(&mut self, rhs: &Ratio) {
        if let Some((a, b, c, d)) = small_parts(self, rhs) {
            if let Some(sum) = small_add(a, b, c, d) {
                *self = sum;
                return;
            }
        }
        *self = &*self + rhs;
    }
}
impl SubAssign<&Ratio> for Ratio {
    fn sub_assign(&mut self, rhs: &Ratio) {
        if let Some((a, b, c, d)) = small_parts(self, rhs) {
            if let Some(diff) = c.checked_neg().and_then(|nc| small_add(a, b, nc, d)) {
                *self = diff;
                return;
            }
        }
        *self = &*self - rhs;
    }
}
impl MulAssign<&Ratio> for Ratio {
    fn mul_assign(&mut self, rhs: &Ratio) {
        if let Some((a, b, c, d)) = small_parts(self, rhs) {
            // Cross-reduce exactly like `Mul for &Ratio`; the reduced
            // product of lowest-term inputs is itself in lowest terms.
            let g1 = crate::int::gcd_u128(a.unsigned_abs(), d.unsigned_abs()).max(1) as i128;
            let g2 = crate::int::gcd_u128(c.unsigned_abs(), b.unsigned_abs()).max(1) as i128;
            let prod = (a / g1)
                .checked_mul(c / g2)
                .zip((b / g2).checked_mul(d / g1));
            if let Some((n, den)) = prod {
                self.num = Int::Small(n);
                self.den = Int::Small(den);
                return;
            }
        }
        *self = &*self * rhs;
    }
}

impl From<i64> for Ratio {
    fn from(v: i64) -> Ratio {
        Ratio::from_int(v)
    }
}
impl From<i32> for Ratio {
    fn from(v: i32) -> Ratio {
        Ratio::from_int(v)
    }
}
impl From<Int> for Ratio {
    fn from(v: Int) -> Ratio {
        Ratio::from_int(v)
    }
}

impl std::str::FromStr for Ratio {
    type Err = String;

    /// Parses `"p"`, `"p/q"`, or a decimal like `"1.25"` (converted
    /// exactly: `125/100` normalized).
    fn from_str(s: &str) -> Result<Ratio, String> {
        let s = s.trim();
        if let Some((num, den)) = s.split_once('/') {
            let n =
                Int::from_decimal(num.trim()).ok_or_else(|| format!("bad numerator in {s:?}"))?;
            let d =
                Int::from_decimal(den.trim()).ok_or_else(|| format!("bad denominator in {s:?}"))?;
            if d.is_zero() {
                return Err(format!("zero denominator in {s:?}"));
            }
            return Ok(Ratio::new(n, d));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let digits = frac_part.len() as u32;
            if digits == 0 || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(format!("bad decimal in {s:?}"));
            }
            let joined = format!("{int_part}{frac_part}");
            let n = Int::from_decimal(&joined).ok_or_else(|| format!("bad decimal in {s:?}"))?;
            let mut den = Int::ONE;
            for _ in 0..digits {
                den = &den * &Int::from(10i64);
            }
            return Ok(Ratio::new(n, den));
        }
        Int::from_decimal(s)
            .map(Ratio::from_int)
            .ok_or_else(|| format!("bad rational {s:?}"))
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == Int::ONE {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(p: i64, q: i64) -> Ratio {
        Ratio::frac(p, q)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, 4), r(1, -2));
        assert_eq!(r(0, 5), Ratio::zero());
        assert_eq!(r(6, -3), Ratio::from_int(-2));
        assert!(r(1, -2).denom().is_positive());
    }

    #[test]
    fn arithmetic_identities() {
        let a = r(3, 7);
        let b = r(-2, 5);
        assert_eq!(&(&a + &b) - &b, a);
        assert_eq!(&(&a * &b) / &b, a);
        assert_eq!(&a + &Ratio::zero(), a);
        assert_eq!(&a * &Ratio::one(), a);
        assert_eq!(&a + &(-&a), Ratio::zero());
        assert_eq!(&a * &a.recip(), Ratio::one());
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 2) > Ratio::from_int(3));
        assert_eq!(r(10, 20).cmp(&r(1, 2)), Ordering::Equal);
    }

    #[test]
    fn pow2_both_signs() {
        assert_eq!(Ratio::pow2(3), Ratio::from_int(8));
        assert_eq!(Ratio::pow2(-3), r(1, 8));
        assert_eq!(&Ratio::pow2(200) * &Ratio::pow2(-200), Ratio::one());
        // The paper's giant wait exponents must round-trip exactly.
        let w = Ratio::pow2(15 * 36); // 2^(15·6²) = 2^540
        assert_eq!(w.numer().bits(), 541);
        assert_eq!(&w * &Ratio::pow2(-540), Ratio::one());
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), Int::from(3));
        assert_eq!(r(7, 2).ceil(), Int::from(4));
        assert_eq!(r(-7, 2).floor(), Int::from(-4));
        assert_eq!(r(-7, 2).ceil(), Int::from(-3));
        assert_eq!(Ratio::from_int(5).floor(), Int::from(5));
        assert_eq!(Ratio::from_int(5).ceil(), Int::from(5));
    }

    #[test]
    fn to_f64_accuracy() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(r(-3, 4).to_f64(), -0.75);
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
        let huge = Ratio::pow2(600);
        assert_eq!(huge.to_f64(), 2f64.powi(600));
        let tiny = Ratio::pow2(-600);
        assert_eq!(tiny.to_f64(), 2f64.powi(-600));
        let over = Ratio::pow2(1100);
        assert_eq!(over.to_f64(), f64::INFINITY);
        assert_eq!((-over).to_f64(), f64::NEG_INFINITY);
    }

    #[test]
    fn big_ratio_to_f64_ratio_of_giants() {
        // (2^600 + 1) / 2^600 ≈ 1.0
        let n = &Ratio::pow2(600) + &Ratio::one();
        let q = &n / &Ratio::pow2(600);
        assert!((q.to_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_f64_exact_dyadics() {
        assert_eq!(Ratio::from_f64_exact(0.5).unwrap(), r(1, 2));
        assert_eq!(Ratio::from_f64_exact(-0.75).unwrap(), r(-3, 4));
        assert_eq!(Ratio::from_f64_exact(3.0).unwrap(), Ratio::from_int(3));
        assert_eq!(Ratio::from_f64_exact(0.0).unwrap(), Ratio::zero());
        assert!(Ratio::from_f64_exact(f64::NAN).is_none());
        assert!(Ratio::from_f64_exact(f64::INFINITY).is_none());
        // Round-trip arbitrary doubles.
        for v in [0.1, -123.456, 1e-300, 1e300, f64::MIN_POSITIVE] {
            let rt = Ratio::from_f64_exact(v).unwrap().to_f64();
            assert_eq!(rt, v, "roundtrip {v}");
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(r(-4, 2).to_string(), "-2");
        assert_eq!(Ratio::zero().to_string(), "0");
    }

    #[test]
    fn giant_wait_ordering_is_exact() {
        // The motivating case: t_big + small vs t_big must stay ordered.
        let t_big = Ratio::pow2(540);
        let bumped = &t_big + &Ratio::pow2(-30);
        assert!(bumped > t_big);
        // f64 would collapse the two (this is why Ratio exists).
        assert_eq!(bumped.to_f64(), t_big.to_f64());
    }

    #[test]
    fn cross_reduced_mul_is_exact() {
        let a = Ratio::new(Int::pow2(200), Int::from(9));
        let b = Ratio::new(Int::from(3), Int::pow2(199));
        assert_eq!(&a * &b, r(2, 3));
    }

    #[test]
    fn min_max() {
        assert_eq!(r(1, 3).min(r(1, 2)), r(1, 3));
        assert_eq!(r(1, 3).max(r(1, 2)), r(1, 2));
    }

    #[test]
    fn parse_forms() {
        assert_eq!("3".parse::<Ratio>().unwrap(), Ratio::from_int(3));
        assert_eq!("-3/6".parse::<Ratio>().unwrap(), r(-1, 2));
        assert_eq!(" 7 / 4 ".parse::<Ratio>().unwrap(), r(7, 4));
        assert_eq!("1.25".parse::<Ratio>().unwrap(), r(5, 4));
        assert_eq!("-0.5".parse::<Ratio>().unwrap(), r(-1, 2));
        assert!("".parse::<Ratio>().is_err());
        assert!("1/0".parse::<Ratio>().is_err());
        assert!("a/b".parse::<Ratio>().is_err());
        assert!("1.2.3".parse::<Ratio>().is_err());
    }

    #[test]
    fn parse_display_roundtrip() {
        for v in [r(22, 7), r(-9, 4), Ratio::from_int(0), Ratio::pow2(40)] {
            let s = v.to_string();
            assert_eq!(s.parse::<Ratio>().unwrap(), v, "roundtrip {s}");
        }
    }
}
