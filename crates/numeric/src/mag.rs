//! Magnitude (unsigned, little-endian limb) arithmetic.
//!
//! These helpers back the big path of [`crate::Int`]. A magnitude is a
//! `Vec<u64>` of little-endian limbs with **no trailing zero limbs**; the
//! empty vector represents zero. All functions preserve that invariant on
//! their outputs.

use std::cmp::Ordering;

/// Removes trailing zero limbs so that the canonical-form invariant holds.
#[inline]
pub fn trim(mag: &mut Vec<u64>) {
    while mag.last() == Some(&0) {
        mag.pop();
    }
}

/// Builds a magnitude from a `u128`.
#[inline]
pub fn from_u128(v: u128) -> Vec<u64> {
    let lo = v as u64;
    let hi = (v >> 64) as u64;
    let mut mag = vec![lo, hi];
    trim(&mut mag);
    mag
}

/// Converts back to `u128` when the value fits.
#[inline]
pub fn to_u128(mag: &[u64]) -> Option<u128> {
    match mag.len() {
        0 => Some(0),
        1 => Some(mag[0] as u128),
        2 => Some((mag[0] as u128) | ((mag[1] as u128) << 64)),
        _ => None,
    }
}

/// Number of significant bits (0 for zero).
#[inline]
pub fn bits(mag: &[u64]) -> u64 {
    match mag.last() {
        None => 0,
        Some(&top) => (mag.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
    }
}

/// Lexicographic-from-the-top magnitude comparison.
pub fn cmp(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => {}
            non_eq => return non_eq,
        }
    }
    Ordering::Equal
}

/// `a + b`.
pub fn add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &limb) in long.iter().enumerate() {
        let s = short.get(i).copied().unwrap_or(0);
        let (x, c1) = limb.overflowing_add(s);
        let (x, c2) = x.overflowing_add(carry);
        carry = (c1 as u64) + (c2 as u64);
        out.push(x);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// `a - b`; requires `a >= b` (checked with a debug assertion).
pub fn sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(cmp(a, b) != Ordering::Less, "mag::sub underflow");
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for (i, &limb) in a.iter().enumerate() {
        let s = b.get(i).copied().unwrap_or(0);
        let (x, b1) = limb.overflowing_sub(s);
        let (x, b2) = x.overflowing_sub(borrow);
        borrow = (b1 as u64) + (b2 as u64);
        out.push(x);
    }
    debug_assert_eq!(borrow, 0);
    trim(&mut out);
    out
}

/// Schoolbook multiplication with `u128` partial products.
pub fn mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + (ai as u128) * (bj as u128) + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    trim(&mut out);
    out
}

/// `a << n` for an arbitrary bit count.
pub fn shl(a: &[u64], n: u64) -> Vec<u64> {
    if a.is_empty() {
        return Vec::new();
    }
    let limb_shift = (n / 64) as usize;
    let bit_shift = (n % 64) as u32;
    let mut out = vec![0u64; limb_shift];
    if bit_shift == 0 {
        out.extend_from_slice(a);
    } else {
        let mut carry = 0u64;
        for &limb in a {
            out.push((limb << bit_shift) | carry);
            carry = limb >> (64 - bit_shift);
        }
        if carry != 0 {
            out.push(carry);
        }
    }
    trim(&mut out);
    out
}

/// `a >> n` (floor) for an arbitrary bit count.
pub fn shr(a: &[u64], n: u64) -> Vec<u64> {
    let limb_shift = (n / 64) as usize;
    if limb_shift >= a.len() {
        return Vec::new();
    }
    let bit_shift = (n % 64) as u32;
    let src = &a[limb_shift..];
    let mut out = Vec::with_capacity(src.len());
    if bit_shift == 0 {
        out.extend_from_slice(src);
    } else {
        for i in 0..src.len() {
            let hi = src.get(i + 1).copied().unwrap_or(0);
            out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
        }
    }
    trim(&mut out);
    out
}

/// Reads the bit at position `i` (little-endian bit order).
#[inline]
pub fn bit(a: &[u64], i: u64) -> bool {
    let limb = (i / 64) as usize;
    match a.get(limb) {
        Some(&w) => (w >> (i % 64)) & 1 == 1,
        None => false,
    }
}

/// Number of trailing zero bits; `None` for zero.
pub fn trailing_zeros(a: &[u64]) -> Option<u64> {
    for (i, &w) in a.iter().enumerate() {
        if w != 0 {
            return Some(i as u64 * 64 + w.trailing_zeros() as u64);
        }
    }
    None
}

/// Restoring binary long division: returns `(quotient, remainder)`.
///
/// Division is rare on the hot paths (rationals are normalised with a
/// shift-based binary GCD), so the simple `O(bits · limbs)` algorithm is the
/// right trade-off over a Knuth-D implementation.
pub fn divrem(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    assert!(!b.is_empty(), "division by zero magnitude");
    match cmp(a, b) {
        Ordering::Less => return (Vec::new(), a.to_vec()),
        Ordering::Equal => return (vec![1], Vec::new()),
        Ordering::Greater => {}
    }
    // Single-limb divisor fast path.
    if b.len() == 1 {
        let d = b[0] as u128;
        let mut q = vec![0u64; a.len()];
        let mut rem = 0u128;
        for i in (0..a.len()).rev() {
            let cur = (rem << 64) | a[i] as u128;
            q[i] = (cur / d) as u64;
            rem = cur % d;
        }
        trim(&mut q);
        let r = from_u128(rem);
        return (q, r);
    }
    let a_bits = bits(a);
    let b_bits = bits(b);
    let mut rem: Vec<u64> = Vec::new();
    let mut quot = vec![0u64; a.len()];
    let mut i = a_bits;
    while i > 0 {
        i -= 1;
        // rem = (rem << 1) | bit_i(a)
        rem = shl(&rem, 1);
        if bit(a, i) {
            if rem.is_empty() {
                rem.push(1);
            } else {
                rem[0] |= 1;
            }
        }
        if bits(&rem) >= b_bits && cmp(&rem, b) != Ordering::Less {
            rem = sub(&rem, b);
            let limb = (i / 64) as usize;
            quot[limb] |= 1u64 << (i % 64);
        }
    }
    trim(&mut quot);
    (quot, rem)
}

/// Binary (Stein) GCD on magnitudes.
pub fn gcd(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() {
        return b.to_vec();
    }
    if b.is_empty() {
        return a.to_vec();
    }
    let za = trailing_zeros(a).unwrap();
    let zb = trailing_zeros(b).unwrap();
    let shift = za.min(zb);
    let mut u = shr(a, za);
    let mut v = shr(b, zb);
    loop {
        match cmp(&u, &v) {
            Ordering::Equal => break,
            Ordering::Less => std::mem::swap(&mut u, &mut v),
            Ordering::Greater => {}
        }
        u = sub(&u, &v);
        let z = trailing_zeros(&u).unwrap();
        u = shr(&u, z);
    }
    shl(&u, shift)
}

/// Correctly-rounded-ish conversion to `f64`: top 128 bits as the mantissa
/// source, then scaled by the discarded bit count. Saturates to
/// `f64::INFINITY` above the representable range.
pub fn to_f64(mag: &[u64]) -> f64 {
    let nbits = bits(mag);
    if nbits == 0 {
        return 0.0;
    }
    if nbits <= 128 {
        return to_u128(mag).unwrap() as f64;
    }
    let drop = nbits - 128;
    let top = shr(mag, drop);
    let top_val = to_u128(&top).unwrap() as f64;
    if drop > 1023 {
        // Even the scale factor alone overflows; the product certainly does.
        return f64::INFINITY;
    }
    top_val * 2f64.powi(drop as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(v: u128) -> Vec<u64> {
        from_u128(v)
    }

    #[test]
    fn roundtrip_u128() {
        for v in [0u128, 1, 42, u64::MAX as u128, u128::MAX, 1 << 100] {
            assert_eq!(to_u128(&from_u128(v)), Some(v));
        }
    }

    #[test]
    fn add_small_values() {
        assert_eq!(to_u128(&add(&m(3), &m(5))), Some(8));
        assert_eq!(to_u128(&add(&m(0), &m(5))), Some(5));
        assert_eq!(
            to_u128(&add(&m(u64::MAX as u128), &m(1))),
            Some(u64::MAX as u128 + 1)
        );
    }

    #[test]
    fn add_carries_past_u128() {
        let s = add(&m(u128::MAX), &m(1));
        assert_eq!(s, vec![0, 0, 1]);
    }

    #[test]
    fn sub_basics() {
        assert_eq!(to_u128(&sub(&m(8), &m(5))), Some(3));
        assert_eq!(sub(&m(5), &m(5)), Vec::<u64>::new());
        assert_eq!(
            to_u128(&sub(&m(u64::MAX as u128 + 1), &m(1))),
            Some(u64::MAX as u128)
        );
    }

    #[test]
    fn mul_basics() {
        assert_eq!(to_u128(&mul(&m(6), &m(7))), Some(42));
        assert_eq!(mul(&m(0), &m(7)), Vec::<u64>::new());
        let big = mul(&m(u128::MAX), &m(u128::MAX));
        // (2^128-1)^2 = 2^256 - 2^129 + 1
        assert_eq!(bits(&big), 256);
    }

    #[test]
    fn shifts_are_inverse() {
        let v = m(0xdead_beef_cafe_babe_u128);
        for n in [0u64, 1, 13, 64, 65, 128, 200] {
            assert_eq!(shr(&shl(&v, n), n), v);
        }
    }

    #[test]
    fn shr_floors() {
        assert_eq!(to_u128(&shr(&m(7), 1)), Some(3));
        assert_eq!(shr(&m(1), 1), Vec::<u64>::new());
        assert_eq!(shr(&m(1), 1000), Vec::<u64>::new());
    }

    #[test]
    fn bits_counts() {
        assert_eq!(bits(&m(0)), 0);
        assert_eq!(bits(&m(1)), 1);
        assert_eq!(bits(&m(255)), 8);
        assert_eq!(bits(&m(256)), 9);
        assert_eq!(bits(&shl(&m(1), 500)), 501);
    }

    #[test]
    fn divrem_small() {
        let (q, r) = divrem(&m(100), &m(7));
        assert_eq!(to_u128(&q), Some(14));
        assert_eq!(to_u128(&r), Some(2));
        let (q, r) = divrem(&m(5), &m(7));
        assert_eq!(q, Vec::<u64>::new());
        assert_eq!(to_u128(&r), Some(5));
    }

    #[test]
    fn divrem_multi_limb() {
        let a = shl(&m(1), 300); // 2^300
        let b = m(1_000_000_007);
        let (q, r) = divrem(&a, &b);
        // check a == q*b + r and r < b
        let back = add(&mul(&q, &b), &r);
        assert_eq!(back, a);
        assert_eq!(cmp(&r, &b), Ordering::Less);
    }

    #[test]
    fn gcd_matches_euclid() {
        let cases: &[(u128, u128)] = &[
            (12, 18),
            (0, 5),
            (5, 0),
            (1, 1),
            (1 << 100, 1 << 60),
            (270, 192),
            (u128::MAX, 3),
        ];
        fn euclid(mut a: u128, mut b: u128) -> u128 {
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        for &(a, b) in cases {
            assert_eq!(
                to_u128(&gcd(&from_u128(a), &from_u128(b))),
                Some(euclid(a, b)),
                "gcd({a},{b})"
            );
        }
    }

    #[test]
    fn to_f64_values() {
        assert_eq!(to_f64(&m(0)), 0.0);
        assert_eq!(to_f64(&m(12345)), 12345.0);
        let big = shl(&m(1), 300);
        assert_eq!(to_f64(&big), 2f64.powi(300));
        let huge = shl(&m(1), 2000);
        assert_eq!(to_f64(&huge), f64::INFINITY);
    }

    #[test]
    fn trailing_zeros_works() {
        assert_eq!(trailing_zeros(&m(0)), None);
        assert_eq!(trailing_zeros(&m(1)), Some(0));
        assert_eq!(trailing_zeros(&m(8)), Some(3));
        assert_eq!(trailing_zeros(&shl(&m(1), 130)), Some(130));
    }
}
