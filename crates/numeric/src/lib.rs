//! # rv-numeric — exact arithmetic substrate
//!
//! Arbitrary-precision signed integers ([`Int`]) and rationals ([`Ratio`])
//! used for all *temporal* bookkeeping in the `plane-rendezvous`
//! reproduction of *Almost Universal Anonymous Rendezvous in the Plane*
//! (SPAA 2020).
//!
//! ## Why this exists
//!
//! Algorithm 1 of the paper waits `2^(15·i²)` local time units in phase `i`
//! (line 14). Already at phase 2 that is `2^60`; at phase 3, `2^135`. A
//! simulator keeping absolute time in `f64` silently loses *every*
//! unit-scale event ordering after such a wait (the ULP of `2^135` is
//! `2^82`), and the paper's correctness claims (Claims 3.8–3.10) are
//! precisely statements about those orderings. Times must be exact:
//!
//! ```
//! use rv_numeric::Ratio;
//!
//! let giant_wait = Ratio::pow2(135);        // 2^(15·3²)
//! let after_tick = &giant_wait + &Ratio::frac(1, 3);
//! assert!(after_tick > giant_wait);          // exact ordering…
//! assert_eq!(after_tick.to_f64(), giant_wait.to_f64()); // …f64 loses it
//! ```
//!
//! ## Design
//!
//! * [`Int`] keeps an `i128` inline and spills to little-endian `u64` limbs
//!   only on overflow — the small-int optimisation; in this workload the
//!   big path is rare (giant waits and their products).
//! * [`Ratio`] is a normalized fraction of [`Int`]s with cross-reduction on
//!   multiply, exact `f64` import (every finite double is dyadic), and a
//!   saturating export to `f64` for geometry.
//! * Division is bitwise restoring long division: simple, obviously
//!   correct, and cold (normalisation uses a shift-based binary GCD).
//!
//! Space (geometry) deliberately stays in `f64` — see the precision policy
//! in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod int;
mod mag;
mod ratio;

pub use int::Int;
pub use ratio::Ratio;

/// Convenience: builds `p/q` as a [`Ratio`].
///
/// ```
/// use rv_numeric::ratio;
/// assert_eq!(ratio(2, 4), ratio(1, 2)); // normalized
/// ```
pub fn ratio(p: i64, q: i64) -> Ratio {
    Ratio::frac(p, q)
}

/// Convenience: builds the integer `v` as a [`Ratio`].
pub fn int(v: i64) -> Ratio {
    Ratio::from_int(v)
}
