//! Signed arbitrary-precision integers with an `i128` fast path.
//!
//! The workloads in this project keep almost every quantity within a couple
//! of machine words: instance parameters are small rationals, and algorithm
//! distances are dyadic. Only the calibrated waits of Algorithm 1
//! (`2^(15 i²)` local time units) and their products spill into the big
//! representation. `Int` therefore stores an `i128` inline and promotes to
//! limb vectors only on overflow — the small-int optimisation the HPC guide
//! recommends for allocation-heavy numeric kernels.

use crate::mag;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Signed arbitrary-precision integer.
///
/// Canonical form: `Small` whenever the value fits in `i128`; `Big`
/// otherwise, with `mag` trimmed (no trailing zero limbs) and `neg == false`
/// for zero (zero is always `Small(0)`).
#[derive(Clone)]
pub enum Int {
    /// Inline value; the overwhelmingly common case.
    Small(i128),
    /// Sign-magnitude heap representation for values outside `i128`.
    Big {
        /// Sign: `true` for strictly negative values.
        neg: bool,
        /// Little-endian limbs, trimmed, magnitude > `i128::MAX`.
        mag: Vec<u64>,
    },
}

impl Int {
    /// Zero.
    pub const ZERO: Int = Int::Small(0);
    /// One.
    pub const ONE: Int = Int::Small(1);

    /// Builds the canonical representation from sign + magnitude limbs.
    fn from_sign_mag(neg: bool, mut mag: Vec<u64>) -> Int {
        mag::trim(&mut mag);
        if let Some(v) = mag::to_u128(&mag) {
            if !neg && v <= i128::MAX as u128 {
                return Int::Small(v as i128);
            }
            if neg && v <= (i128::MAX as u128) + 1 {
                // -(2^127) is representable.
                return Int::Small((v as i128).wrapping_neg());
            }
        }
        Int::Big { neg, mag }
    }

    /// Constructs from an `i128`.
    #[inline]
    pub fn from_i128(v: i128) -> Int {
        Int::Small(v)
    }

    /// Constructs from a `u128` (promotes to `Big` above `i128::MAX`).
    #[inline]
    pub fn from_u128(v: u128) -> Int {
        if v <= i128::MAX as u128 {
            Int::Small(v as i128)
        } else {
            Int::Big {
                neg: false,
                mag: mag::from_u128(v),
            }
        }
    }

    /// `2^k` for `k ≥ 0`.
    pub fn pow2(k: u64) -> Int {
        if k < 127 {
            Int::Small(1i128 << k)
        } else {
            Int::Big {
                neg: false,
                mag: mag::shl(&[1], k),
            }
        }
    }

    /// True iff the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        matches!(self, Int::Small(0))
    }

    /// True iff the value is strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        match self {
            Int::Small(v) => *v < 0,
            Int::Big { neg, .. } => *neg,
        }
    }

    /// True iff the value is strictly positive.
    #[inline]
    pub fn is_positive(&self) -> bool {
        !self.is_zero() && !self.is_negative()
    }

    /// Sign as -1, 0, or +1.
    #[inline]
    pub fn signum(&self) -> i32 {
        if self.is_zero() {
            0
        } else if self.is_negative() {
            -1
        } else {
            1
        }
    }

    /// Returns the value as `i128` when it fits.
    pub fn to_i128(&self) -> Option<i128> {
        match self {
            Int::Small(v) => Some(*v),
            Int::Big { .. } => None,
        }
    }

    /// Magnitude limbs of `self` (allocates for the small case).
    fn magnitude(&self) -> Vec<u64> {
        match self {
            Int::Small(v) => mag::from_u128(v.unsigned_abs()),
            Int::Big { mag, .. } => mag.clone(),
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Int {
        match self {
            Int::Small(v) => {
                if let Some(a) = v.checked_abs() {
                    Int::Small(a)
                } else {
                    // |i128::MIN| does not fit; promote.
                    Int::Big {
                        neg: false,
                        mag: mag::from_u128(v.unsigned_abs()),
                    }
                }
            }
            Int::Big { mag, .. } => Int::Big {
                neg: false,
                mag: mag.clone(),
            },
        }
    }

    /// Number of significant bits of the magnitude (0 for zero).
    pub fn bits(&self) -> u64 {
        match self {
            Int::Small(v) => 128 - v.unsigned_abs().leading_zeros() as u64,
            Int::Big { mag, .. } => mag::bits(mag),
        }
    }

    /// `self << k` (exact multiplication by `2^k`).
    pub fn shl(&self, k: u64) -> Int {
        match self {
            Int::Small(0) => Int::ZERO,
            Int::Small(v) => {
                let abs = v.unsigned_abs();
                if k < 127 && abs.leading_zeros() as u64 > k {
                    Int::Small(v << k)
                } else {
                    Int::from_sign_mag(*v < 0, mag::shl(&mag::from_u128(abs), k))
                }
            }
            Int::Big { neg, mag } => Int::from_sign_mag(*neg, mag::shl(mag, k)),
        }
    }

    /// `self >> k`, flooring toward zero on the magnitude (used only on
    /// non-negative values in practice; asserts that in debug builds).
    pub fn shr_magnitude(&self, k: u64) -> Int {
        match self {
            Int::Small(v) => {
                let shifted = if k >= 128 { 0 } else { v.unsigned_abs() >> k };
                Int::from_sign_mag(*v < 0 && shifted != 0, mag::from_u128(shifted))
            }
            Int::Big { neg, mag } => Int::from_sign_mag(*neg, mag::shr(mag, k)),
        }
    }

    /// Trailing zero bits of the magnitude; `None` for zero.
    fn trailing_zeros(&self) -> Option<u64> {
        match self {
            Int::Small(0) => None,
            Int::Small(v) => Some(v.unsigned_abs().trailing_zeros() as u64),
            Int::Big { mag, .. } => mag::trailing_zeros(mag),
        }
    }

    /// Greatest common divisor of magnitudes; `gcd(0, x) = |x|`.
    pub fn gcd(&self, other: &Int) -> Int {
        match (self, other) {
            (Int::Small(a), Int::Small(b)) => {
                Int::from_u128(gcd_u128(a.unsigned_abs(), b.unsigned_abs()))
            }
            _ => {
                if self.is_zero() {
                    return other.abs();
                }
                if other.is_zero() {
                    return self.abs();
                }
                // Dyadic fast path: when either operand is ±2^t the gcd is
                // 2^min(t, tz(other)) — the dominant big-operand case here,
                // since every AUR duration is a power of two.
                let (ta, tb) = (
                    self.trailing_zeros().expect("nonzero"),
                    other.trailing_zeros().expect("nonzero"),
                );
                if self.bits() == ta + 1 || other.bits() == tb + 1 {
                    return Int::pow2(ta.min(tb));
                }
                // Mixed small/big: one Euclidean step folds the big side
                // into u128 range (`gcd(a, B) = gcd(a, B mod a)`), avoiding
                // the limb-vector binary GCD entirely.
                match (self, other) {
                    (Int::Small(a), Int::Big { mag, .. })
                    | (Int::Big { mag, .. }, Int::Small(a)) => {
                        let a_abs = a.unsigned_abs();
                        let (_, r) = mag::divrem(mag, &mag::from_u128(a_abs));
                        let r = mag::to_u128(&r).expect("remainder below a u128 divisor");
                        Int::from_u128(gcd_u128(a_abs, r))
                    }
                    (Int::Big { mag: ma, .. }, Int::Big { mag: mb, .. }) => {
                        Int::from_sign_mag(false, mag::gcd(ma, mb))
                    }
                    _ => unreachable!("small/small handled above"),
                }
            }
        }
    }

    /// Euclidean-style division: returns `(quotient, remainder)` with the
    /// quotient truncated toward zero and `remainder` carrying the sign of
    /// `self` (matching Rust's `/` and `%` on primitives).
    pub fn div_rem(&self, other: &Int) -> (Int, Int) {
        assert!(!other.is_zero(), "Int division by zero");
        if let (Int::Small(a), Int::Small(b)) = (self, other) {
            if let (Some(q), Some(r)) = (a.checked_div(*b), a.checked_rem(*b)) {
                return (Int::Small(q), Int::Small(r));
            }
        }
        let (qm, rm) = mag::divrem(&self.magnitude(), &other.magnitude());
        let q_neg = self.is_negative() != other.is_negative();
        (
            Int::from_sign_mag(q_neg, qm),
            Int::from_sign_mag(self.is_negative(), rm),
        )
    }

    /// Converts to `f64` (saturating to ±∞ outside the representable range).
    pub fn to_f64(&self) -> f64 {
        match self {
            Int::Small(v) => *v as f64,
            Int::Big { neg, mag } => {
                let m = mag::to_f64(mag);
                if *neg {
                    -m
                } else {
                    m
                }
            }
        }
    }

    /// Parses a decimal string with an optional leading `-`/`+`.
    pub fn from_decimal(s: &str) -> Option<Int> {
        let (neg, digits) = match s.as_bytes().first()? {
            b'-' => (true, &s[1..]),
            b'+' => (false, &s[1..]),
            _ => (false, s),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let mut acc = Int::ZERO;
        let ten = Int::Small(10);
        for b in digits.bytes() {
            acc = &(&acc * &ten) + &Int::Small((b - b'0') as i128);
        }
        Some(if neg { -acc } else { acc })
    }
}

/// Binary GCD for `u128`, with a word-sized fast path: almost every
/// normalization in this workload fits u64, where the same loop runs on
/// native words instead of double-word arithmetic.
pub(crate) fn gcd_u128(a: u128, b: u128) -> u128 {
    if a <= u64::MAX as u128 && b <= u64::MAX as u128 {
        return gcd_u64(a as u64, b as u64) as u128;
    }
    gcd_u128_slow(a, b)
}

fn gcd_u128_slow(mut a: u128, mut b: u128) -> u128 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            break;
        }
    }
    a << shift
}

/// Binary GCD on native words.
fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            break;
        }
    }
    a << shift
}

impl PartialEq for Int {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Int {}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Int::Small(a), Int::Small(b)) => a.cmp(b),
            (Int::Big { neg: na, mag: ma }, Int::Big { neg: nb, mag: mb }) => match (na, nb) {
                (false, true) => Ordering::Greater,
                (true, false) => Ordering::Less,
                (false, false) => mag::cmp(ma, mb),
                (true, true) => mag::cmp(ma, mb).reverse(),
            },
            // Canonical form guarantees a Big magnitude exceeds any i128,
            // so mixed comparisons are decided by the Big side's sign.
            (Int::Small(_), Int::Big { neg, .. }) => {
                if *neg {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (Int::Big { neg, .. }, Int::Small(_)) => {
                if *neg {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
        }
    }
}

impl std::hash::Hash for Int {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash the canonical (sign, limbs) form so Small/Big never collide
        // differently for equal values (equal values share representation by
        // the canonical-form invariant).
        match self {
            Int::Small(v) => {
                state.write_u8(0);
                state.write_i128(*v);
            }
            Int::Big { neg, mag } => {
                state.write_u8(1);
                state.write_u8(*neg as u8);
                for limb in mag {
                    state.write_u64(*limb);
                }
            }
        }
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        match self {
            Int::Small(v) => {
                if let Some(n) = v.checked_neg() {
                    Int::Small(n)
                } else {
                    Int::Big {
                        neg: false,
                        mag: mag::from_u128(v.unsigned_abs()),
                    }
                }
            }
            Int::Big { neg, mag } => Int::from_sign_mag(!neg, mag.clone()),
        }
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        -&self
    }
}

impl Add for &Int {
    type Output = Int;
    fn add(self, rhs: &Int) -> Int {
        if let (Int::Small(a), Int::Small(b)) = (self, rhs) {
            if let Some(s) = a.checked_add(*b) {
                return Int::Small(s);
            }
        }
        // Sign-magnitude addition.
        let (an, bm) = (self.is_negative(), rhs.is_negative());
        let (ma, mb) = (self.magnitude(), rhs.magnitude());
        if an == bm {
            Int::from_sign_mag(an, mag::add(&ma, &mb))
        } else {
            match mag::cmp(&ma, &mb) {
                Ordering::Equal => Int::ZERO,
                Ordering::Greater => Int::from_sign_mag(an, mag::sub(&ma, &mb)),
                Ordering::Less => Int::from_sign_mag(bm, mag::sub(&mb, &ma)),
            }
        }
    }
}

impl Sub for &Int {
    type Output = Int;
    fn sub(self, rhs: &Int) -> Int {
        if let (Int::Small(a), Int::Small(b)) = (self, rhs) {
            if let Some(s) = a.checked_sub(*b) {
                return Int::Small(s);
            }
        }
        self + &(-rhs)
    }
}

impl Mul for &Int {
    type Output = Int;
    fn mul(self, rhs: &Int) -> Int {
        if let (Int::Small(a), Int::Small(b)) = (self, rhs) {
            if let Some(p) = a.checked_mul(*b) {
                return Int::Small(p);
            }
        }
        if self.is_zero() || rhs.is_zero() {
            return Int::ZERO;
        }
        let neg = self.is_negative() != rhs.is_negative();
        Int::from_sign_mag(neg, mag::mul(&self.magnitude(), &rhs.magnitude()))
    }
}

macro_rules! forward_binop_owned {
    ($trait:ident, $method:ident) => {
        impl $trait for Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Int> for Int {
            type Output = Int;
            fn $method(self, rhs: &Int) -> Int {
                (&self).$method(rhs)
            }
        }
        impl $trait<Int> for &Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                self.$method(&rhs)
            }
        }
    };
}
forward_binop_owned!(Add, add);
forward_binop_owned!(Sub, sub);
forward_binop_owned!(Mul, mul);

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, rhs: &Int) {
        *self = &*self + rhs;
    }
}
impl SubAssign<&Int> for Int {
    fn sub_assign(&mut self, rhs: &Int) {
        *self = &*self - rhs;
    }
}
impl MulAssign<&Int> for Int {
    fn mul_assign(&mut self, rhs: &Int) {
        *self = &*self * rhs;
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Int {
        Int::Small(v as i128)
    }
}
impl From<i32> for Int {
    fn from(v: i32) -> Int {
        Int::Small(v as i128)
    }
}
impl From<u64> for Int {
    fn from(v: u64) -> Int {
        Int::Small(v as i128)
    }
}
impl From<i128> for Int {
    fn from(v: i128) -> Int {
        Int::Small(v)
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Int::Small(v) => write!(f, "{v}"),
            Int::Big { neg, mag } => {
                if *neg {
                    write!(f, "-")?;
                }
                // Peel 19-digit chunks by dividing by 10^19.
                let chunk = mag::from_u128(10_000_000_000_000_000_000u128);
                let mut rest = mag.clone();
                let mut chunks: Vec<u64> = Vec::new();
                while !rest.is_empty() {
                    let (q, r) = mag::divrem(&rest, &chunk);
                    chunks.push(mag::to_u128(&r).unwrap() as u64);
                    rest = q;
                }
                let mut iter = chunks.iter().rev();
                if let Some(first) = iter.next() {
                    write!(f, "{first}")?;
                }
                for c in iter {
                    write!(f, "{c:019}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Debug for Int {
    /// Numbers read better unadorned in assertion output, so `Debug`
    /// delegates to `Display`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(bits: u64) -> Int {
        Int::pow2(bits)
    }

    #[test]
    fn canonical_small() {
        assert!(matches!(Int::from_u128(5), Int::Small(5)));
        assert!(matches!(
            Int::from_u128(i128::MAX as u128),
            Int::Small(i128::MAX)
        ));
        assert!(matches!(
            Int::from_u128(i128::MAX as u128 + 1),
            Int::Big { .. }
        ));
    }

    #[test]
    fn add_overflow_promotes() {
        let a = Int::Small(i128::MAX);
        let b = Int::Small(1);
        let s = &a + &b;
        assert!(matches!(s, Int::Big { .. }));
        assert_eq!(&s - &b, a);
    }

    #[test]
    fn neg_min_promotes() {
        let m = Int::Small(i128::MIN);
        let n = -&m;
        assert!(n.is_positive());
        assert_eq!(-&n, m);
    }

    #[test]
    fn mixed_sign_addition() {
        let a = big(200);
        let b = -&big(200);
        assert!((&a + &b).is_zero());
        let c = &big(200) + &Int::Small(-7);
        assert_eq!(&c + &Int::Small(7), big(200));
    }

    #[test]
    fn mul_signs() {
        assert_eq!(&Int::Small(-3) * &Int::Small(4), Int::Small(-12));
        let p = &(-&big(130)) * &Int::Small(-2);
        assert_eq!(p, big(131));
        assert!((&big(130) * &Int::ZERO).is_zero());
    }

    #[test]
    fn ordering_across_representations() {
        let a = big(200);
        let b = big(201);
        assert!(a < b);
        assert!(-&a > -&b);
        assert!(Int::Small(5) < a);
        assert!(-&a < Int::Small(5));
        assert_eq!(a.cmp(&a.clone()), Ordering::Equal);
    }

    #[test]
    fn pow2_boundaries() {
        assert_eq!(Int::pow2(0), Int::Small(1));
        assert_eq!(Int::pow2(126), Int::Small(1 << 126));
        assert_eq!(Int::pow2(127).to_f64(), 2f64.powi(127));
        assert_eq!(Int::pow2(540).bits(), 541);
    }

    #[test]
    fn shl_matches_pow2_mul() {
        let v = Int::Small(12345);
        assert_eq!(v.shl(200), &v * &Int::pow2(200));
        let n = Int::Small(-7);
        assert_eq!(n.shl(130), &n * &Int::pow2(130));
    }

    #[test]
    fn gcd_values() {
        assert_eq!(Int::Small(12).gcd(&Int::Small(18)), Int::Small(6));
        assert_eq!(Int::Small(-12).gcd(&Int::Small(18)), Int::Small(6));
        assert_eq!(Int::ZERO.gcd(&Int::Small(-5)), Int::Small(5));
        let g = big(300).gcd(&big(200));
        assert_eq!(g, big(200));
    }

    #[test]
    fn div_rem_matches_primitives() {
        for (a, b) in [(100i128, 7i128), (-100, 7), (100, -7), (-100, -7)] {
            let (q, r) = Int::Small(a).div_rem(&Int::Small(b));
            assert_eq!(q, Int::Small(a / b));
            assert_eq!(r, Int::Small(a % b));
        }
    }

    #[test]
    fn div_rem_big() {
        let a = big(300);
        let b = Int::Small(1_000_003);
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r >= Int::ZERO && r < b);
    }

    #[test]
    fn display_round_trip() {
        for v in [
            Int::ZERO,
            Int::Small(-42),
            Int::Small(i128::MAX),
            big(150),
            -&big(200),
            &big(400) + &Int::Small(987654321),
        ] {
            let s = v.to_string();
            assert_eq!(Int::from_decimal(&s).unwrap(), v, "roundtrip {s}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Int::from_decimal("").is_none());
        assert!(Int::from_decimal("-").is_none());
        assert!(Int::from_decimal("12a").is_none());
        assert!(Int::from_decimal("1.5").is_none());
    }

    #[test]
    fn to_f64_big() {
        assert_eq!(big(400).to_f64(), 2f64.powi(400));
        assert_eq!((-&big(400)).to_f64(), -(2f64.powi(400)));
        assert_eq!(big(1100).to_f64(), f64::INFINITY);
    }

    #[test]
    fn bits_small_and_big() {
        assert_eq!(Int::ZERO.bits(), 0);
        assert_eq!(Int::Small(1).bits(), 1);
        assert_eq!(Int::Small(-8).bits(), 4);
        assert_eq!(big(127).bits(), 128);
    }
}
