//! Differential property tests for the allocation-free `Ratio` fast
//! paths added for the hot-path PR: `cmp_ref`, `min_ref`, and the
//! in-place `+=` / `-=` / `*=` small paths must agree *exactly* with the
//! allocating reference operations on every operand mix — both inline
//! (`i128`) components, both big, and the promotion boundary where an
//! i128 result spills to limbs.
//!
//! The reference implementations are the borrowed binary operators
//! (`&a + &b`, cross-multiplied `cmp`), which the existing `props.rs`
//! suite already ties to the field axioms. Anything that diverges here is
//! a silent ordering or rounding bug on the solver's per-event path.

use proptest::prelude::*;
use rv_numeric::{Int, Ratio};
use std::cmp::Ordering;

/// Operands spanning the small path, the big path, and the i128→Big
/// promotion boundary (values within a few ULPs of `i128::MAX`).
fn int_strategy() -> impl Strategy<Value = Int> {
    prop_oneof![
        any::<i64>().prop_map(|v| Int::from(v as i128)),
        any::<i128>().prop_map(Int::from),
        // Straddle the promotion boundary: i128::MAX − k and its
        // neighbourhood, so sums/products land on either side of it.
        (0i128..1024).prop_map(|k| Int::from(i128::MAX - k)),
        (0i128..1024).prop_map(|k| Int::from(i128::MIN + k)),
        // Guaranteed big path: shifted far past 128 bits.
        (any::<i64>(), 120u64..300).prop_map(|(v, s)| Int::from(v as i128).shl(s)),
        (any::<i128>(), 1u64..160, any::<i64>())
            .prop_map(|(v, s, w)| &Int::from(v).shl(s) + &Int::from(w as i128)),
    ]
}

fn ratio_strategy() -> impl Strategy<Value = Ratio> {
    (
        int_strategy(),
        int_strategy().prop_filter("nonzero", |d| !d.is_zero()),
    )
        .prop_map(|(n, d)| Ratio::new(n, d))
}

/// The definitional comparison via the allocating subtraction path:
/// a/b vs c/d has the sign of a/b − c/d.
fn cmp_reference(lhs: &Ratio, rhs: &Ratio) -> Ordering {
    let diff = lhs - rhs;
    if diff.is_zero() {
        Ordering::Equal
    } else if diff.is_negative() {
        Ordering::Less
    } else {
        Ordering::Greater
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    #[test]
    fn cmp_ref_matches_cross_multiplication(a in ratio_strategy(), b in ratio_strategy()) {
        prop_assert_eq!(a.cmp_ref(&b), cmp_reference(&a, &b));
        // Antisymmetry through the same fast paths.
        prop_assert_eq!(b.cmp_ref(&a), cmp_reference(&a, &b).reverse());
        prop_assert_eq!(a.cmp_ref(&a), Ordering::Equal);
    }

    #[test]
    fn min_ref_matches_value_min(a in ratio_strategy(), b in ratio_strategy()) {
        let by_ref = a.min_ref(&b).clone();
        let by_val = a.clone().min(b.clone());
        prop_assert_eq!(&by_ref, &by_val);
        // Tie-breaking must match `std::cmp::min`: first argument wins.
        if a == b {
            prop_assert!(std::ptr::eq(a.min_ref(&b), &a));
        }
    }

    #[test]
    fn add_assign_matches_add(a in ratio_strategy(), b in ratio_strategy()) {
        let reference = &a + &b;
        let mut acc = a;
        acc += &b;
        prop_assert_eq!(&acc, &reference);
        // Normal form must be identical too, not just the value class.
        prop_assert_eq!(acc.to_f64().to_bits(), reference.to_f64().to_bits());
    }

    #[test]
    fn sub_assign_matches_sub(a in ratio_strategy(), b in ratio_strategy()) {
        let reference = &a - &b;
        let mut acc = a;
        acc -= &b;
        prop_assert_eq!(&acc, &reference);
    }

    #[test]
    fn mul_assign_matches_mul(a in ratio_strategy(), b in ratio_strategy()) {
        let reference = &a * &b;
        let mut acc = a;
        acc *= &b;
        prop_assert_eq!(&acc, &reference);
        prop_assert_eq!(acc.to_f64().to_bits(), reference.to_f64().to_bits());
    }

    #[test]
    fn assign_chain_stays_normalized(a in ratio_strategy(), b in ratio_strategy(), c in ratio_strategy()) {
        // A chain of in-place ops must land on the same canonical Ratio
        // as the equivalent expression tree (lowest terms are unique, so
        // Eq on the struct is bytewise canonical-form equality).
        let mut acc = a.clone();
        acc += &b;
        acc *= &c;
        acc -= &b;
        let reference = &(&(&a + &b) * &c) - &b;
        prop_assert_eq!(acc, reference);
    }
}

#[test]
fn cmp_ref_promotion_boundary_exact() {
    // i128::MAX / 1 vs (i128::MAX + 1) / 1: the right side lives on the
    // Big path, one ULP above the small path's ceiling. The bit-length
    // shortcut must NOT fire (gap < 2 bits); the fallback must decide.
    let small_max = Ratio::new(Int::from(i128::MAX), Int::ONE);
    let just_big = Ratio::new(&Int::from(i128::MAX) + &Int::ONE, Int::ONE);
    assert_eq!(small_max.cmp_ref(&just_big), Ordering::Less);
    assert_eq!(just_big.cmp_ref(&small_max), Ordering::Greater);

    // Equal values expressed with big components: 2^140/2 vs 2^139.
    let a = Ratio::new(Int::ONE.shl(140), Int::from(2));
    let b = Ratio::new(Int::ONE.shl(139), Int::ONE);
    assert_eq!(a.cmp_ref(&b), Ordering::Equal);

    // Mixed magnitude where bit-gap decides: 2^200 vs 3/2.
    let giant = Ratio::new(Int::ONE.shl(200), Int::ONE);
    let tiny = Ratio::new(Int::from(3), Int::from(2));
    assert_eq!(giant.cmp_ref(&tiny), Ordering::Greater);
    assert_eq!(tiny.cmp_ref(&giant), Ordering::Less);
    let neg_giant = Ratio::new(-&Int::ONE.shl(200), Int::ONE);
    assert_eq!(neg_giant.cmp_ref(&tiny), Ordering::Less);
    assert_eq!(
        neg_giant.cmp_ref(&Ratio::new(Int::from(-3), Int::from(2))),
        Ordering::Less
    );
}

#[test]
fn assign_overflow_falls_back_to_big() {
    // Small-path `+=` must hand off to the allocating path when the
    // cross products overflow i128, and land on the identical canonical
    // value.
    let a = Ratio::new(Int::from(i128::MAX - 1), Int::from(3));
    let b = Ratio::new(Int::from(i128::MAX - 5), Int::from(7));
    let reference = &a + &b;
    let mut acc = a;
    acc += &b;
    assert_eq!(acc, reference);

    let c = Ratio::new(Int::from(i128::MAX / 2), Int::from(5));
    let reference_mul = &acc * &c;
    acc *= &c;
    assert_eq!(acc, reference_mul);
}
