//! Property tests for `rv-numeric`: the arbitrary-precision types must
//! agree with machine arithmetic wherever machine arithmetic is exact, and
//! satisfy the field axioms everywhere.
//!
//! Case counts are capped for CI-friendly wall time. For a deep run,
//! override them with the `PROPTEST_CASES` environment variable, which
//! takes precedence over the in-source configuration (e.g.
//! `PROPTEST_CASES=4096 cargo test --release`).

use proptest::prelude::*;
use rv_numeric::{Int, Ratio};

fn int_strategy() -> impl Strategy<Value = Int> {
    prop_oneof![
        any::<i64>().prop_map(|v| Int::from(v as i128)),
        any::<i128>().prop_map(Int::from),
        // Values guaranteed to live on the big path.
        (any::<i64>(), 120u64..400).prop_map(|(v, s)| Int::from(v as i128).shl(s)),
        (any::<i128>(), 1u64..200, any::<i64>())
            .prop_map(|(v, s, w)| &Int::from(v).shl(s) + &Int::from(w as i128)),
    ]
}

fn ratio_strategy() -> impl Strategy<Value = Ratio> {
    (
        int_strategy(),
        int_strategy().prop_filter("nonzero", |d| !d.is_zero()),
    )
        .prop_map(|(n, d)| Ratio::new(n, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn int_add_matches_i128_where_exact(a in any::<i64>(), b in any::<i64>()) {
        let sum = &Int::from(a as i128) + &Int::from(b as i128);
        prop_assert_eq!(sum.to_i128(), Some(a as i128 + b as i128));
    }

    #[test]
    fn int_mul_matches_i128_where_exact(a in any::<i64>(), b in any::<i64>()) {
        let prod = &Int::from(a as i128) * &Int::from(b as i128);
        prop_assert_eq!(prod.to_i128(), Some(a as i128 * b as i128));
    }

    #[test]
    fn int_ring_axioms(a in int_strategy(), b in int_strategy(), c in int_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, Int::ZERO);
        prop_assert_eq!(&a + &(-&a), Int::ZERO);
    }

    #[test]
    fn int_div_rem_invariant(a in int_strategy(), b in int_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&(&q * &b) + &r, a.clone());
        prop_assert!(r.abs() < b.abs());
        // Remainder sign follows the dividend (truncated division).
        prop_assert!(r.is_zero() || (r.is_negative() == a.is_negative()));
    }

    #[test]
    fn int_gcd_divides_both(a in int_strategy(), b in int_strategy()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!(a.div_rem(&g).1.is_zero());
            prop_assert!(b.div_rem(&g).1.is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn int_shl_is_mul_by_pow2(a in int_strategy(), s in 0u64..300) {
        prop_assert_eq!(a.shl(s), &a * &Int::pow2(s));
    }

    #[test]
    fn int_ordering_antisymmetry(a in int_strategy(), b in int_strategy()) {
        use std::cmp::Ordering::*;
        match a.cmp(&b) {
            Less => prop_assert_eq!(b.cmp(&a), Greater),
            Greater => prop_assert_eq!(b.cmp(&a), Less),
            Equal => prop_assert_eq!(&a, &b),
        }
    }

    #[test]
    fn int_display_roundtrip(a in int_strategy()) {
        prop_assert_eq!(Int::from_decimal(&a.to_string()).unwrap(), a);
    }

    #[test]
    fn ratio_field_axioms(a in ratio_strategy(), b in ratio_strategy(), c in ratio_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, Ratio::zero());
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), Ratio::one());
        }
    }

    #[test]
    fn ratio_sub_then_add_roundtrips(a in ratio_strategy(), b in ratio_strategy()) {
        prop_assert_eq!(&(&a - &b) + &b, a);
    }

    #[test]
    fn ratio_normalized(a in ratio_strategy()) {
        prop_assert!(a.denom().is_positive());
        prop_assert_eq!(a.numer().gcd(a.denom()), Int::ONE);
    }

    #[test]
    fn ratio_cmp_matches_f64_when_far_apart(p in -1000i64..1000, q in 1i64..1000,
                                            r in -1000i64..1000, s in 1i64..1000) {
        let a = Ratio::frac(p, q);
        let b = Ratio::frac(r, s);
        let fa = p as f64 / q as f64;
        let fb = r as f64 / s as f64;
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn ratio_f64_roundtrip_exact(v in any::<f64>()) {
        prop_assume!(v.is_finite());
        let r = Ratio::from_f64_exact(v).unwrap();
        prop_assert_eq!(r.to_f64(), v);
    }

    #[test]
    fn ratio_floor_ceil_bracket(a in ratio_strategy()) {
        let f = Ratio::from_int(a.floor());
        let c = Ratio::from_int(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(&c - &f <= Ratio::one());
        if a.is_integer() {
            prop_assert_eq!(f, c);
        }
    }

    #[test]
    fn ratio_to_f64_monotone_on_small(p in -100i64..100, q in 1i64..100, d in 1i64..50) {
        let a = Ratio::frac(p, q);
        let b = &a + &Ratio::frac(1, d);
        prop_assert!(a.to_f64() < b.to_f64());
    }
}
